//! The four concurrency passes: `lock-order-cycle`, `no-blocking-under-lock`,
//! `trace-context-propagated`, and `unjoined-spawn`.
//!
//! All four run over the symbol table from [`crate::callgraph`] plus a
//! per-function *guard-liveness walk*: a linear scan of each function body
//! that tracks which lock guards are live at every token. The model
//! (DESIGN.md §15):
//!
//! * `let g = x.lock();` binds a guard that lives to the end of its
//!   enclosing `{ … }` block or an explicit `drop(g)`;
//! * a chained acquisition (`rx.lock().recv()`) creates a *temporary*
//!   guard live only for the rest of the statement;
//! * `.lock()` always counts (except on `stdout`/`stderr`/`stdin`);
//!   `.read()` / `.write()` count only when the receiver is a known
//!   lock-typed field or static, since those names are ubiquitous io
//!   methods. Unknown receivers become the `<anon>` lock: tracked for
//!   liveness (blocking under them still reports) but excluded from the
//!   acquisition-order graph, where a merged anonymous node would
//!   fabricate cycles.
//!
//! Lock identity is the receiver *field/static name*, workspace-wide: two
//! types with a field `state` share one graph node. That over-approximates
//! (a cross-type alias could fabricate an edge) but never under-approximates
//! within one type, and it is what makes the analysis cross-crate without
//! type resolution.

use crate::callgraph::{resolve_call, FnDef, SourceFile, Symbols};
use crate::lexer::TokenKind;
use crate::rules::{Diagnostic, LOCK_ORDER, NO_BLOCKING, TRACE_PROP, UNJOINED};
use std::collections::{BTreeMap, BTreeSet};

/// A lock acquisition observed in a function body.
#[derive(Debug)]
struct Acq {
    /// Lock identity (receiver field name, or `<anon>`).
    lock: String,
    /// Locks already held when this one is taken.
    held: Vec<String>,
    /// Code index of the `lock`/`read`/`write` ident.
    tok: usize,
}

/// A potentially-blocking operation observed in a function body.
#[derive(Debug)]
struct Block {
    /// What blocks: `send`, `recv`, `recv_timeout`, `join`, `scope`.
    op: &'static str,
    /// Locks held at the operation.
    held: Vec<String>,
    /// Code index of the operation ident.
    tok: usize,
}

/// A resolved call site.
#[derive(Debug)]
struct Call {
    /// Index of the callee in [`Symbols::functions`].
    callee: usize,
    /// Locks held at the call.
    held: Vec<String>,
    /// Code index of the callee ident.
    tok: usize,
}

/// A spawn site observed in a function body.
#[derive(Debug)]
struct SpawnSite {
    /// Code index of the `spawn` ident.
    tok: usize,
    /// Code-index range of the argument list (open paren, close paren).
    args: (usize, usize),
    /// `scope.spawn(..)` / `s.spawn(..)` — joined automatically at scope
    /// end, so exempt from `unjoined-spawn`.
    scoped: bool,
}

/// Everything the walk learns about one function.
#[derive(Debug, Default)]
struct FnFacts {
    direct_locks: BTreeSet<String>,
    acquisitions: Vec<Acq>,
    blockers: Vec<Block>,
    calls: Vec<Call>,
    spawns: Vec<SpawnSite>,
    mentions_trace: bool,
}

/// Identifiers never treated as workspace call sites even when followed by
/// `(` — control keywords plus tokens other detectors own.
const NOT_CALLS: &[&str] = &[
    "if",
    "while",
    "for",
    "match",
    "loop",
    "return",
    "fn",
    "in",
    "as",
    "move",
    "drop",
    "spawn",
    "scope",
    "lock",
    "read",
    "write",
    "send",
    "recv",
    "recv_timeout",
    "join",
    "Some",
    "Ok",
    "Err",
];

/// True for identifiers that carry a trace context by convention:
/// `TraceContext` itself and `ctx`-suffixed binding names (`ctx`,
/// `trace_ctx`, `job.ctx`, …).
fn trace_ident(name: &str) -> bool {
    name == "TraceContext" || name.ends_with("ctx") || name.ends_with("Ctx")
}

/// Run all four passes and return their raw (unsuppressed) diagnostics.
pub fn analyze(files: &[SourceFile], symbols: &Symbols) -> Vec<Diagnostic> {
    let n = symbols.functions.len();
    let mut facts: Vec<FnFacts> = Vec::with_capacity(n);
    for f in &symbols.functions {
        let file = &files[f.file];
        if f.is_test {
            facts.push(FnFacts::default());
            continue;
        }
        let mut fa = match f.body {
            Some(body) => walk_fn(file, f, body, symbols),
            None => FnFacts::default(),
        };
        // The signature is part of the trace surface: `fn run(ctx:
        // TraceContext)` touches trace even if the body never names it.
        let sig_end = f.body.map(|(open, _)| open).unwrap_or_else(|| {
            let mut k = f.header;
            while k < file.code.len() && !file.is_p(k, ';') {
                k += 1;
            }
            k
        });
        for k in f.header..sig_end.min(file.code.len()) {
            if file.tok(k).kind == TokenKind::Ident && trace_ident(file.txt(k)) {
                fa.mentions_trace = true;
            }
        }
        facts.push(fa);
    }

    // Fixpoint 1: transitive lock-acquisition sets over the call graph.
    let mut trans: Vec<BTreeSet<String>> = facts.iter().map(|f| f.direct_locks.clone()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for c in 0..facts[i].calls.len() {
                let callee = facts[i].calls[c].callee;
                if callee == i {
                    continue;
                }
                let add: Vec<String> = trans[callee]
                    .iter()
                    .filter(|l| !trans[i].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[i].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Fixpoint 2: does a function touch trace context, transitively?
    let mut touches: Vec<bool> = facts.iter().map(|f| f.mentions_trace).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if touches[i] {
                continue;
            }
            if facts[i].calls.iter().any(|c| touches[c.callee]) {
                touches[i] = true;
                changed = true;
            }
        }
    }

    let mut diags = Vec::new();
    diags.extend(lock_order_pass(files, symbols, &facts, &trans));
    diags.extend(blocking_pass(files, symbols, &facts));
    diags.extend(trace_pass(files, symbols, &facts, &touches));
    diags.extend(unjoined_pass(files, symbols, &facts));
    diags
}

/// One edge in the acquisition-order graph, with its first witness.
#[derive(Debug)]
struct EdgeInfo {
    witness: String,
    path: String,
    line: u32,
    col: u32,
}

fn lock_order_pass(
    files: &[SourceFile],
    symbols: &Symbols,
    facts: &[FnFacts],
    trans: &[BTreeSet<String>],
) -> Vec<Diagnostic> {
    let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    for (i, f) in symbols.functions.iter().enumerate() {
        let file = &files[f.file];
        for a in &facts[i].acquisitions {
            if a.lock == "<anon>" {
                continue;
            }
            for h in &a.held {
                if h == "<anon>" {
                    continue;
                }
                let t = file.tok(a.tok);
                edges
                    .entry((h.clone(), a.lock.clone()))
                    .or_insert_with(|| EdgeInfo {
                        witness: format!(
                            "{} acquires `{}` while holding `{}` ({}:{}:{})",
                            f.qual, a.lock, h, file.class.path, t.line, t.col
                        ),
                        path: file.class.path.clone(),
                        line: t.line,
                        col: t.col,
                    });
            }
        }
        for c in &facts[i].calls {
            if c.held.is_empty() {
                continue;
            }
            let callee = &symbols.functions[c.callee];
            for h in &c.held {
                if h == "<anon>" {
                    continue;
                }
                for l in &trans[c.callee] {
                    if l == "<anon>" {
                        continue;
                    }
                    let t = file.tok(c.tok);
                    edges
                        .entry((h.clone(), l.clone()))
                        .or_insert_with(|| EdgeInfo {
                            witness: format!(
                                "{} calls {} (which acquires `{}`) while holding `{}` ({}:{}:{})",
                                f.qual, callee.qual, l, h, file.class.path, t.line, t.col
                            ),
                            path: file.class.path.clone(),
                            line: t.line,
                            col: t.col,
                        });
                }
            }
        }
    }

    let mut diags = Vec::new();
    for scc in strongly_connected(&edges) {
        let in_cycle = scc.len() > 1 || edges.contains_key(&(scc[0].clone(), scc[0].clone()));
        if !in_cycle {
            continue;
        }
        let set: BTreeSet<&String> = scc.iter().collect();
        let cycle_edges: Vec<&EdgeInfo> = edges
            .iter()
            .filter(|((a, b), _)| set.contains(a) && set.contains(b))
            .map(|(_, e)| e)
            .collect();
        let first = cycle_edges[0];
        let witnesses: Vec<&str> = cycle_edges.iter().map(|e| e.witness.as_str()).collect();
        diags.push(Diagnostic {
            rule: LOCK_ORDER,
            path: first.path.clone(),
            line: first.line,
            col: first.col,
            message: format!(
                "lock acquisition cycle across {}: {} — two threads interleaving these paths \
                 deadlock; pick one global acquisition order (DESIGN.md §15)",
                scc.iter()
                    .map(|l| format!("`{}`", l))
                    .collect::<Vec<_>>()
                    .join(", "),
                witnesses.join("; ")
            ),
            suppressed: None,
        });
    }
    diags
}

fn blocking_pass(files: &[SourceFile], symbols: &Symbols, facts: &[FnFacts]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, f) in symbols.functions.iter().enumerate() {
        let file = &files[f.file];
        for b in &facts[i].blockers {
            let t = file.tok(b.tok);
            let held = b
                .held
                .iter()
                .map(|l| format!("`{}`", l))
                .collect::<Vec<_>>()
                .join(", ");
            diags.push(Diagnostic {
                rule: NO_BLOCKING,
                path: file.class.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` can block in {} while lock guard(s) {} are live; every other thread \
                     needing the lock stalls behind the blocked holder (the classic \
                     bounded-channel deadlock) — drop the guard first",
                    b.op, f.qual, held
                ),
                suppressed: None,
            });
        }
    }
    diags
}

fn trace_pass(
    files: &[SourceFile],
    symbols: &Symbols,
    facts: &[FnFacts],
    touches: &[bool],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, f) in symbols.functions.iter().enumerate() {
        let file = &files[f.file];
        if !file.class.is_instrumented() {
            continue;
        }
        let self_type = self_type_of(f);
        for s in &facts[i].spawns {
            let (open, close) = s.args;
            let mut ok = false;
            for k in open + 1..close {
                let t = file.tok(k);
                if t.kind != TokenKind::Ident {
                    continue;
                }
                if trace_ident(&t.text) {
                    ok = true;
                    break;
                }
                // A call to a function that (transitively) touches trace
                // context counts: the spawned closure hands off to it.
                if file.is_p(k + 1, '(') && !NOT_CALLS.contains(&t.text.as_str()) {
                    let self_call =
                        k >= 2 && file.is_p(k - 1, '.') && file.tok(k - 2).is_ident("self");
                    let st = if self_call { self_type } else { None };
                    if let Some(defs) = resolve_call(symbols, &t.text, st) {
                        if defs.iter().any(|&d| touches[d]) {
                            ok = true;
                            break;
                        }
                    }
                }
            }
            if !ok {
                let t = file.tok(s.tok);
                diags.push(Diagnostic {
                    rule: TRACE_PROP,
                    path: file.class.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "spawn in {} neither receives nor captures a TraceContext; propagate the \
                         request ctx across the thread boundary so its span tree stays one \
                         connected tree",
                        f.qual
                    ),
                    suppressed: None,
                });
            }
        }
    }
    diags
}

fn unjoined_pass(files: &[SourceFile], symbols: &Symbols, facts: &[FnFacts]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, f) in symbols.functions.iter().enumerate() {
        let file = &files[f.file];
        let Some((body_open, _)) = f.body else {
            continue;
        };
        for s in &facts[i].spawns {
            if s.scoped || !spawn_discarded(file, body_open, s) {
                continue;
            }
            let t = file.tok(s.tok);
            diags.push(Diagnostic {
                rule: UNJOINED,
                path: file.class.path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "spawn in {} discards its JoinHandle; the thread outlives supervision and \
                     panics in it vanish — bind the handle and join it, or use a scoped spawn",
                    f.qual
                ),
                suppressed: None,
            });
        }
    }
    diags
}

/// Heuristic: is the `JoinHandle` of this spawn discarded?
///
/// Discarded means the spawn expression is a bare statement (`…spawn(..);`
/// with no `.join()` in the trailing method chain) or is bound to `_`
/// (`let _ = …spawn(..);`). A handle pushed into a collection, returned,
/// or bound to a name is treated as supervised — whether that name is
/// *eventually* joined is beyond a token-level pass.
fn spawn_discarded(file: &SourceFile, body_open: usize, s: &SpawnSite) -> bool {
    // Statement prefix: tokens from the previous `;` / `{` / `}` up to the
    // spawn path.
    let mut k = s.tok;
    while k > body_open + 1
        && !(file.is_p(k - 1, ';') || file.is_p(k - 1, '{') || file.is_p(k - 1, '}'))
    {
        k -= 1;
    }
    let mut balance = 0i32;
    let mut has_let = false;
    let mut binder: Option<&str> = None;
    let mut m = k;
    while m < s.tok {
        if file.is_p(m, '(') || file.is_p(m, '[') {
            balance += 1;
        } else if file.is_p(m, ')') || file.is_p(m, ']') {
            balance -= 1;
        } else if balance == 0 && file.tok(m).is_ident("let") {
            has_let = true;
            let mut b = m + 1;
            if file.tok(b).is_ident("mut") {
                b += 1;
            }
            if file.tok(b).kind == TokenKind::Ident {
                binder = Some(file.txt(b));
            }
        }
        m += 1;
    }
    if balance > 0 {
        return false; // handle consumed by an enclosing call (push, collect, …)
    }
    if has_let {
        return binder == Some("_");
    }
    // Expression statement: scan the trailing method chain for `.join(`.
    let mut m = s.args.1 + 1;
    loop {
        if m + 2 < file.code.len()
            && file.is_p(m, '.')
            && file.tok(m + 1).kind == TokenKind::Ident
            && file.is_p(m + 2, '(')
        {
            if file.txt(m + 1) == "join" {
                return false;
            }
            m = matching_paren(file, m + 2) + 1;
            continue;
        }
        break;
    }
    m < file.code.len() && file.is_p(m, ';')
}

/// `Type` for a method (`Type::name`), `None` for a free function.
fn self_type_of(f: &FnDef) -> Option<&str> {
    if f.qual == f.name {
        None
    } else {
        f.qual.split("::").next()
    }
}

/// Code index of the `)` matching the `(` at `open` (falls back to the
/// last code index on unbalanced input).
fn matching_paren(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < file.code.len() {
        if file.is_p(j, '(') {
            depth += 1;
        } else if file.is_p(j, ')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    file.code.len().saturating_sub(1)
}

/// The guard-liveness walk over one function body.
fn walk_fn(file: &SourceFile, f: &FnDef, body: (usize, usize), symbols: &Symbols) -> FnFacts {
    let (open, close) = body;
    let mut facts = FnFacts::default();
    // Nested `fn` items get their own walk; skip their extent here so their
    // guards and spawns are not attributed to the enclosing function.
    let nested: Vec<(usize, usize)> = symbols
        .functions
        .iter()
        .filter(|g| g.file == f.file && g.header > open && g.header < close)
        .map(|g| (g.header, g.body.map(|(_, e)| e).unwrap_or(g.header)))
        .collect();

    // One Vec of guards per live `{}` scope; `(lock, binder)`.
    let mut scopes: Vec<Vec<(String, Option<String>)>> = vec![Vec::new()];
    // Temporary guards from chained acquisitions, live to end of statement.
    let mut temps: Vec<String> = Vec::new();
    let self_type = self_type_of(f);

    let mut j = open + 1;
    while j < close {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == j) {
            j = ne + 1;
            continue;
        }
        if file.is_p(j, '{') {
            scopes.push(Vec::new());
            temps.clear();
            j += 1;
            continue;
        }
        if file.is_p(j, '}') {
            scopes.pop();
            temps.clear();
            j += 1;
            continue;
        }
        if file.is_p(j, ';') {
            temps.clear();
            j += 1;
            continue;
        }
        let t = file.tok(j);
        if t.kind != TokenKind::Ident {
            j += 1;
            continue;
        }
        let name = t.text.as_str();
        if trace_ident(name) {
            facts.mentions_trace = true;
        }
        let prev_dot = j > 0 && file.is_p(j - 1, '.');
        let next_open = file.is_p(j + 1, '(');

        // --- lock acquisition --------------------------------------------
        if prev_dot
            && matches!(name, "lock" | "read" | "write")
            && next_open
            && file.is_p(j + 2, ')')
        {
            let recv = if j >= 2 && file.tok(j - 2).kind == TokenKind::Ident {
                Some(file.txt(j - 2))
            } else {
                None
            };
            let counted = if name == "lock" {
                !matches!(recv, Some("stdout" | "stderr" | "stdin"))
            } else {
                matches!(recv, Some(r) if symbols.lock_fields.contains(r))
            };
            if counted {
                let lock = match recv {
                    Some("self") | None => "<anon>".to_string(),
                    Some(r) => r.to_string(),
                };
                let held = held_locks(&scopes, &temps);
                facts.acquisitions.push(Acq {
                    lock: lock.clone(),
                    held,
                    tok: j,
                });
                facts.direct_locks.insert(lock.clone());
                match binding_of(file, open, j, j + 2) {
                    Some(binder) => {
                        if let Some(top) = scopes.last_mut() {
                            top.push((lock, Some(binder)));
                        }
                    }
                    None => temps.push(lock),
                }
                j += 3;
                continue;
            }
        }

        // --- explicit guard drop -----------------------------------------
        if name == "drop"
            && next_open
            && file.tok(j + 2).kind == TokenKind::Ident
            && file.is_p(j + 3, ')')
        {
            let binder = file.txt(j + 2).to_string();
            for sc in scopes.iter_mut() {
                sc.retain(|(_, b)| b.as_deref() != Some(binder.as_str()));
            }
            j += 4;
            continue;
        }

        // --- blocking operations -----------------------------------------
        let block_op: Option<&'static str> = if prev_dot && next_open {
            match name {
                "send" => Some("send"),
                "recv" => Some("recv"),
                "recv_timeout" => Some("recv_timeout"),
                "join" if file.is_p(j + 2, ')') => Some("join"),
                _ => None,
            }
        } else if name == "scope"
            && next_open
            && j >= 2
            && file.is_p(j - 1, ':')
            && file.is_p(j - 2, ':')
        {
            // `thread::scope(..)` joins every scoped thread before returning.
            Some("scope (implicit join)")
        } else {
            None
        };
        if let Some(op) = block_op {
            let held = held_locks(&scopes, &temps);
            if !held.is_empty() {
                facts.blockers.push(Block { op, held, tok: j });
            }
            j += 1;
            continue;
        }

        // --- spawn sites --------------------------------------------------
        if name == "spawn" && next_open {
            let close_p = matching_paren(file, j + 1);
            let scoped = prev_dot
                && j >= 2
                && file.tok(j - 2).kind == TokenKind::Ident
                && matches!(file.txt(j - 2), "s" | "sc" | "scope");
            facts.spawns.push(SpawnSite {
                tok: j,
                args: (j + 1, close_p),
                scoped,
            });
            j += 1; // walk into the closure: its guards/sends are this thread's
            continue;
        }

        // --- resolved calls -----------------------------------------------
        if next_open && !NOT_CALLS.contains(&name) && !(j > 0 && file.tok(j - 1).is_ident("fn")) {
            let self_call = prev_dot && j >= 2 && file.tok(j - 2).is_ident("self");
            let st = if self_call { self_type } else { None };
            if let Some(defs) = resolve_call(symbols, name, st) {
                let held = held_locks(&scopes, &temps);
                for d in defs {
                    if !symbols.functions[d].is_test {
                        facts.calls.push(Call {
                            callee: d,
                            held: held.clone(),
                            tok: j,
                        });
                    }
                }
            }
        }
        j += 1;
    }
    facts
}

/// If the statement containing the acquisition is `let [mut] NAME = …;`
/// and the acquisition's call is the statement's final expression (next
/// token after `()` is `;`), return NAME — a bound guard. Anything else
/// (chained call, destructuring, expression position) is a temporary.
fn binding_of(file: &SourceFile, body_open: usize, j: usize, close_paren: usize) -> Option<String> {
    if !file.is_p(close_paren + 1, ';') {
        return None;
    }
    let mut k = j;
    while k > body_open + 1
        && !(file.is_p(k - 1, ';') || file.is_p(k - 1, '{') || file.is_p(k - 1, '}'))
    {
        k -= 1;
    }
    if !file.tok(k).is_ident("let") {
        return None;
    }
    let mut b = k + 1;
    if file.tok(b).is_ident("mut") {
        b += 1;
    }
    if file.tok(b).kind == TokenKind::Ident && file.is_p(b + 1, '=') {
        Some(file.txt(b).to_string())
    } else {
        None
    }
}

/// All live lock names, bound guards then temporaries, deduplicated.
fn held_locks(scopes: &[Vec<(String, Option<String>)>], temps: &[String]) -> Vec<String> {
    let mut set = BTreeSet::new();
    for sc in scopes {
        for (lock, _) in sc {
            set.insert(lock.clone());
        }
    }
    for lock in temps {
        set.insert(lock.clone());
    }
    set.into_iter().collect()
}

/// Tarjan's strongly-connected components over the acquisition-order
/// graph. Returns each component as a sorted list of lock names, in
/// deterministic (sorted-by-first-node) order.
fn strongly_connected(edges: &BTreeMap<(String, String), EdgeInfo>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let index_of: BTreeMap<&String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&String> = nodes.into_iter().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[index_of[a]].push(index_of[b]);
    }

    struct Tarjan<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for wi in 0..self.adj[v].len() {
                let w = self.adj[v][wi];
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    if let Some(iw) = self.index[w] {
                        self.low[v] = self.low[v].min(iw);
                    }
                }
            }
            if Some(self.low[v]) == self.index[v] {
                let mut comp = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.out.push(comp);
            }
        }
    }
    let mut t = Tarjan {
        adj: &adj,
        index: vec![None; names.len()],
        low: vec![0; names.len()],
        on_stack: vec![false; names.len()],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..names.len() {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    let mut comps: Vec<Vec<String>> = t
        .out
        .into_iter()
        .map(|mut c| {
            c.sort_unstable();
            c.into_iter().map(|i| names[i].clone()).collect()
        })
        .collect();
    comps.sort();
    comps
}
