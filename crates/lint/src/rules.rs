//! The rule engine: per-file rules over the token stream.
//!
//! Every rule has a stable ID (see [`RULES`]), produces span-accurate
//! diagnostics, and can be suppressed site-by-site with
//! `// ada-lint: allow(rule-id) reason` — the reason is mandatory, and the
//! comment must sit on the finding's line or the line directly above it.
//! Unused or malformed suppressions are themselves findings, so annotations
//! cannot rot silently.

use crate::lexer::{Token, TokenKind};

/// `no-panic-in-lib`: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test, non-bench library code. A panic inside a
/// pipeline worker thread poisons channels instead of surfacing a
/// structured `AdaError`.
pub const NO_PANIC: &str = "no-panic-in-lib";
/// `bounded-channels-only`: pipeline crates must not construct unbounded
/// channels (`mpsc::channel()`, `unbounded()`); backpressure is load-bearing.
pub const BOUNDED_CHANNELS: &str = "bounded-channels-only";
/// `no-std-sync-in-hot-crates`: core/plfs/simfs must use `parking_lot`
/// locks, not `std::sync::{Mutex, RwLock, Condvar}` (no poisoning, faster
/// uncontended path).
pub const NO_STD_SYNC: &str = "no-std-sync-in-hot-crates";
/// `no-print-in-lib`: `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` only
/// in `crates/bench` (the CLI) — libraries report through return values and
/// telemetry.
pub const NO_PRINT: &str = "no-print-in-lib";
/// `error-kind-exhaustive`: every `AdaError` variant maps to a distinct
/// kind string in `kind()`, with no wildcard arm (see `semantic.rs`).
pub const ERROR_KIND: &str = "error-kind-exhaustive";
/// `metric-name-registered`: every metric/span name literal passed to a
/// telemetry sink (`counter`/`gauge`/`histogram`/`span`/`record`/`root`)
/// must be catalogued in `METRICS.md` (see `semantic.rs`). Skipped when
/// the workspace has no catalog.
pub const METRIC_NAME: &str = "metric-name-registered";
/// `unregistered-metric-unused`: the inverse of [`METRIC_NAME`] — a
/// concrete (dot-separated, non-family) name catalogued in `METRICS.md`
/// that no scanned crate ever emits is stale and must be removed (see
/// `semantic.rs`).
pub const METRIC_UNUSED: &str = "unregistered-metric-unused";
/// `forbid-unsafe`: no `unsafe` tokens anywhere, and every library crate
/// root carries `#![forbid(unsafe_code)]`.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// `lock-order-cycle`: a cycle in the workspace-wide lock acquisition-order
/// graph (per-function acquisition sets propagated through the call graph);
/// two threads interleaving the witness paths deadlock (see
/// `concurrency.rs`).
pub const LOCK_ORDER: &str = "lock-order-cycle";
/// `no-blocking-under-lock`: a bounded-channel `send`/`recv`, a
/// `JoinHandle::join`, or a scope join while a `Mutex`/`RwLock` guard is
/// live — the classic bounded-channel deadlock shape (see `concurrency.rs`).
pub const NO_BLOCKING: &str = "no-blocking-under-lock";
/// `trace-context-propagated`: every spawn in the instrumented crates must
/// receive or capture a `TraceContext` (directly or via a callee), keeping
/// each request's span tree one connected tree (see `concurrency.rs`).
pub const TRACE_PROP: &str = "trace-context-propagated";
/// `unjoined-spawn`: a spawn whose `JoinHandle` is discarded; the thread
/// outlives supervision and its panics vanish (see `concurrency.rs`).
pub const UNJOINED: &str = "unjoined-spawn";
/// `malformed-allow`: an `ada-lint:` comment that does not parse as
/// `allow(rule-id) reason` (the reason is mandatory).
pub const MALFORMED_ALLOW: &str = "malformed-allow";
/// `unused-allow`: an `allow` comment that suppressed nothing — stale
/// annotations must be deleted, not accumulated.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// All rule IDs, in reporting order. JSON reports emit a count per entry
/// even when zero, so baselines diff cleanly.
pub const RULES: &[&str] = &[
    NO_PANIC,
    BOUNDED_CHANNELS,
    NO_STD_SYNC,
    NO_PRINT,
    ERROR_KIND,
    METRIC_NAME,
    METRIC_UNUSED,
    FORBID_UNSAFE,
    LOCK_ORDER,
    NO_BLOCKING,
    TRACE_PROP,
    UNJOINED,
    MALFORMED_ALLOW,
    UNUSED_ALLOW,
];

/// Rules an `// ada-lint: allow(...)` comment may suppress. The semantic
/// catalog rules are excluded (a wrong kind map or stale catalog is fixed,
/// not waived), as are the meta-rules. The concurrency rules *are*
/// suppressible: the passes over-approximate, and a provably-safe site
/// carries its proof in the mandatory reason string.
pub fn suppressible(rule: &str) -> bool {
    !matches!(
        rule,
        ERROR_KIND | METRIC_NAME | METRIC_UNUSED | MALFORMED_ALLOW | UNUSED_ALLOW
    )
}

/// Crates whose pipelines rely on bounded channels for backpressure.
/// `server` is here for its per-connection reader→executor→writer
/// channels: an unbounded one would let a fast peer queue frames without
/// limit.
const PIPELINE_CRATES: &[&str] = &["core", "frontend", "plfs", "simfs", "vmdsim", "server"];
/// Crates on the ingest/query hot path that must use `parking_lot`.
const HOT_CRATES: &[&str] = &[
    "cache", "core", "frontend", "plfs", "simfs", "server", "client",
];
/// Crates exempt from `no-panic-in-lib` / `no-print-in-lib` (CLI + bench
/// harness; panics there abort one run, not a library caller's pipeline).
const BENCH_CRATES: &[&str] = &["bench"];
/// Crates carrying request-scoped tracing: every spawn there must
/// propagate a `TraceContext` (`trace-context-propagated`).
const INSTRUMENTED_CRATES: &[&str] = &["core", "frontend", "server", "client"];

/// One finding, before or after suppression resolution.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule ID from [`RULES`].
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (chars).
    pub col: u32,
    /// Human-readable explanation with the fix direction.
    pub message: String,
    /// `Some(reason)` once an `allow` comment claimed this finding.
    pub suppressed: Option<String>,
}

impl Diagnostic {
    fn new(rule: &'static str, path: &str, tok: &Token, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            suppressed: None,
        }
    }
}

/// A parsed `// ada-lint: allow(rule) reason` directive.
#[derive(Debug)]
pub struct Allow {
    /// Repo-relative path of the file carrying the directive.
    pub path: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// Why the site is safe (mandatory).
    pub reason: String,
    /// Set once the directive has claimed a finding.
    pub used: bool,
}

/// Which per-file rules apply, derived from the file's workspace position.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate directory name under `crates/` (e.g. `core`).
    pub crate_name: String,
    /// Repo-relative path (e.g. `crates/core/src/ada.rs`).
    pub path: String,
    /// `src/main.rs` or `src/bin/**` — binary targets may print and panic.
    pub is_bin_target: bool,
}

impl FileClass {
    fn is_bench(&self) -> bool {
        BENCH_CRATES.contains(&self.crate_name.as_str())
    }
    fn panic_rules_apply(&self) -> bool {
        !self.is_bench() && !self.is_bin_target
    }
    fn is_pipeline(&self) -> bool {
        PIPELINE_CRATES.contains(&self.crate_name.as_str())
    }
    fn is_hot(&self) -> bool {
        HOT_CRATES.contains(&self.crate_name.as_str())
    }
    /// Does the trace-propagation pass apply to this file's crate?
    pub(crate) fn is_instrumented(&self) -> bool {
        INSTRUMENTED_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Run every per-file token rule over one file and return the *raw*
/// diagnostics (including `malformed-allow`) plus the parsed `allow`
/// directives. Suppression is resolved globally afterwards — see
/// [`resolve_suppressions`] — so cross-file passes (semantic, concurrency)
/// participate in the same allow mechanism.
pub fn scan_file(class: &FileClass, tokens: &[Token]) -> (Vec<Diagnostic>, Vec<Allow>) {
    let in_test = test_regions(tokens);
    let (allows, mut diags) = parse_allows(class, tokens);
    let code = crate::lexer::code_indices(tokens);
    scan_code_rules(class, tokens, &code, &in_test, &mut diags);
    (diags, allows)
}

/// Resolve suppressions across the whole workspace: an allow covers
/// findings of its rule, in its file, on its own line or the line directly
/// below (i.e. a standalone comment above the offending line, or a trailing
/// comment on it). Afterwards, every unused allow becomes an
/// `unused-allow` finding. Diagnostics are matched in (path, line, col)
/// order, so resolution is deterministic.
pub fn resolve_suppressions(diags: &mut Vec<Diagnostic>, allows: &mut [Allow]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    for d in diags.iter_mut() {
        if !suppressible(d.rule) {
            continue;
        }
        for a in allows.iter_mut() {
            if a.rule == d.rule && a.path == d.path && (a.line == d.line || a.line + 1 == d.line) {
                d.suppressed = Some(a.reason.clone());
                a.used = true;
                break;
            }
        }
    }
    for a in allows.iter() {
        if !a.used {
            diags.push(Diagnostic {
                rule: UNUSED_ALLOW,
                path: a.path.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "allow({}) suppresses nothing on this or the next line; delete it",
                    a.rule
                ),
                suppressed: None,
            });
        }
    }
}

/// Token-sequence matching for all code rules in one pass.
fn scan_code_rules(
    class: &FileClass,
    tokens: &[Token],
    code: &[usize],
    in_test: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let tok = |j: usize| -> &Token { &tokens[code[j]] };
    let text = |j: usize| -> &str { tok(j).text.as_str() };
    let is_p = |j: usize, c: char| tok(j).kind == TokenKind::Punct && text(j).starts_with(c);

    for j in 0..code.len() {
        let t = tok(j);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let tested = in_test[code[j]];

        // --- no-panic-in-lib ------------------------------------------------
        if class.panic_rules_apply() && !tested {
            let is_method_call = |name: &str| {
                t.text == name
                    && j > 0
                    && is_p(j - 1, '.')
                    && j + 1 < code.len()
                    && is_p(j + 1, '(')
            };
            let is_macro = |name: &str| t.text == name && j + 1 < code.len() && is_p(j + 1, '!');
            if is_method_call("unwrap") || is_method_call("expect") {
                diags.push(Diagnostic::new(
                    NO_PANIC,
                    &class.path,
                    t,
                    format!(
                        "`.{}()` can panic inside a library/worker path; return a structured \
                         error (AdaError) or annotate why it is infallible",
                        t.text
                    ),
                ));
            } else if ["panic", "unreachable", "todo", "unimplemented"]
                .iter()
                .any(|m| is_macro(m))
            {
                diags.push(Diagnostic::new(
                    NO_PANIC,
                    &class.path,
                    t,
                    format!(
                        "`{}!` aborts the thread; in a pipeline this poisons channels instead of \
                         surfacing an AdaError",
                        t.text
                    ),
                ));
            }
        }

        // --- no-print-in-lib ------------------------------------------------
        if class.panic_rules_apply()
            && !tested
            && j + 1 < code.len()
            && is_p(j + 1, '!')
            && ["println", "eprintln", "print", "eprint", "dbg"].contains(&t.text.as_str())
        {
            diags.push(Diagnostic::new(
                NO_PRINT,
                &class.path,
                t,
                format!(
                    "`{}!` in library code; report through return values or ada-telemetry \
                     (stdout/stderr belong to crates/bench)",
                    t.text
                ),
            ));
        }

        // --- bounded-channels-only ------------------------------------------
        if class.is_pipeline() && !tested {
            // Skip a turbofish (`::<T>`) between the constructor name and
            // its argument list.
            let after_generics = |k: usize| -> usize {
                if k + 2 < code.len() && is_p(k, ':') && is_p(k + 1, ':') && is_p(k + 2, '<') {
                    let mut depth = 0i32;
                    let mut m = k + 2;
                    while m < code.len() {
                        if is_p(m, '<') {
                            depth += 1;
                        } else if is_p(m, '>') {
                            depth -= 1;
                            if depth == 0 {
                                return m + 1;
                            }
                        }
                        m += 1;
                    }
                    return m;
                }
                k
            };
            let k = after_generics(j + 1);
            let unbounded_ctor =
                (t.text == "channel" && k + 1 < code.len() && is_p(k, '(') && is_p(k + 1, ')'))
                    || ((t.text == "unbounded" || t.text == "unbounded_channel")
                        && k < code.len()
                        && is_p(k, '('));
            if unbounded_ctor {
                diags.push(Diagnostic::new(
                    BOUNDED_CHANNELS,
                    &class.path,
                    t,
                    "unbounded channel constructor in a pipeline crate; use \
                     `sync_channel(depth)` so backpressure bounds memory"
                        .to_string(),
                ));
            }
        }

        // --- no-std-sync-in-hot-crates --------------------------------------
        if class.is_hot()
            && !tested
            && t.text == "std"
            && matches_path(tokens, code, j, &["std", "::", "sync", "::"])
        {
            // `std::sync::X` or `std::sync::{A, B}` — flag banned names.
            // The matched prefix is six code tokens: `std` `:` `:` `sync`
            // `:` `:`.
            const BANNED: &[&str] = &["Mutex", "RwLock", "Condvar"];
            let after = j + 6;
            let mut hits: Vec<usize> = Vec::new();
            if after < code.len() {
                if is_p(after, '{') {
                    let mut k = after + 1;
                    while k < code.len() && !is_p(k, '}') {
                        if tok(k).kind == TokenKind::Ident && BANNED.contains(&text(k)) {
                            hits.push(k);
                        }
                        k += 1;
                    }
                } else if tok(after).kind == TokenKind::Ident && BANNED.contains(&text(after)) {
                    hits.push(after);
                }
            }
            for h in hits {
                diags.push(Diagnostic::new(
                    NO_STD_SYNC,
                    &class.path,
                    tok(h),
                    format!(
                        "std::sync::{} in a hot crate; use parking_lot::{} (no lock poisoning, \
                         faster uncontended path)",
                        text(h),
                        text(h)
                    ),
                ));
            }
        }

        // --- forbid-unsafe (token half; crate-root attr half is in lib.rs) --
        if t.text == "unsafe" {
            diags.push(Diagnostic::new(
                FORBID_UNSAFE,
                &class.path,
                t,
                "`unsafe` is forbidden workspace-wide (crate roots carry \
                 #![forbid(unsafe_code)])"
                    .to_string(),
            ));
        }
    }
}

/// True when code tokens starting at `j` spell the `::`-separated path in
/// `parts` (`::` entries match two consecutive `:` puncts).
fn matches_path(tokens: &[Token], code: &[usize], j: usize, parts: &[&str]) -> bool {
    let mut k = j;
    for part in parts {
        if *part == "::" {
            let ok = k + 1 < code.len()
                && tokens[code[k]].text == ":"
                && tokens[code[k + 1]].text == ":"
                && tokens[code[k]].kind == TokenKind::Punct
                && tokens[code[k + 1]].kind == TokenKind::Punct;
            if !ok {
                return false;
            }
            k += 2;
        } else {
            if k >= code.len()
                || tokens[code[k]].kind != TokenKind::Ident
                || tokens[code[k]].text != *part
            {
                return false;
            }
            k += 1;
        }
    }
    true
}

/// Mark every token that lives inside `#[cfg(test)]` / `#[test]` items.
///
/// The scan walks attributes; when one is a test marker it brackets the
/// following item (through its `{ … }` body or terminating `;`) and marks
/// the token range. `cfg(any(test, …))` counts: any `test` ident inside a
/// `cfg` attribute marks the item.
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut marked = vec![false; tokens.len()];
    let is_p = |j: usize, c: char| {
        tokens[code[j]].kind == TokenKind::Punct && tokens[code[j]].text.starts_with(c)
    };

    let mut j = 0usize;
    while j < code.len() {
        if !(is_p(j, '#') && j + 1 < code.len() && is_p(j + 1, '[')) {
            j += 1;
            continue;
        }
        // Find the attribute's closing `]`.
        let mut depth = 0i32;
        let mut end = j + 1;
        while end < code.len() {
            if is_p(end, '[') {
                depth += 1;
            } else if is_p(end, ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        if end >= code.len() {
            break; // unterminated attribute; nothing more to mark
        }
        let content: Vec<&str> = code[j + 2..end]
            .iter()
            .map(|&i| tokens[i].text.as_str())
            .collect();
        let is_test_attr = content.as_slice() == ["test"]
            || (content.first() == Some(&"cfg")
                && content.iter().enumerate().any(|(i, t)| {
                    // `test` counts unless negated as `not(test)`.
                    *t == "test" && !(i >= 2 && content[i - 2] == "not")
                }));
        if is_test_attr {
            if let Some(item_end) = item_extent(tokens, &code, end + 1) {
                let from = code[j];
                let to = code[item_end];
                for slot in marked.iter_mut().take(to + 1).skip(from) {
                    *slot = true;
                }
            }
        }
        j = end + 1;
    }
    marked
}

/// From code index `start` (just after a test attribute), find the code
/// index of the token that ends the annotated item: the `}` matching its
/// first body brace, or a `;` reached before any brace. Skips stacked
/// attributes and ignores braces nested in `(…)` / `[…]` (e.g. default
/// expressions) while searching for the body.
fn item_extent(tokens: &[Token], code: &[usize], start: usize) -> Option<usize> {
    let is_p = |j: usize, c: char| {
        tokens[code[j]].kind == TokenKind::Punct && tokens[code[j]].text.starts_with(c)
    };
    let mut j = start;
    // Skip further attributes (`#[…]`) stacked on the same item.
    while j + 1 < code.len() && is_p(j, '#') && is_p(j + 1, '[') {
        let mut depth = 0i32;
        j += 1;
        while j < code.len() {
            if is_p(j, '[') {
                depth += 1;
            } else if is_p(j, ']') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Find the item body `{` (at zero paren/bracket depth) or a `;`.
    let mut pb = 0i32;
    while j < code.len() {
        if is_p(j, '(') || is_p(j, '[') {
            pb += 1;
        } else if is_p(j, ')') || is_p(j, ']') {
            pb -= 1;
        } else if pb == 0 && is_p(j, ';') {
            return Some(j);
        } else if pb == 0 && is_p(j, '{') {
            let mut depth = 0i32;
            while j < code.len() {
                if is_p(j, '{') {
                    depth += 1;
                } else if is_p(j, '}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                j += 1;
            }
            return Some(code.len() - 1);
        }
        j += 1;
    }
    None
}

/// Extract `ada-lint: allow(rule) reason` directives from comments; emit
/// `malformed-allow` diagnostics for ones that don't parse or lack a reason.
pub(crate) fn parse_allows(class: &FileClass, tokens: &[Token]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        // Doc comments document the syntax; only plain comments carry
        // directives.
        let is_doc = ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| t.text.starts_with(p));
        if is_doc {
            continue;
        }
        let Some(pos) = t.text.find("ada-lint:") else {
            continue;
        };
        let rest = t.text[pos + "ada-lint:".len()..].trim_start();
        let parsed = rest.strip_prefix("allow").and_then(|r| {
            let r = r.trim_start();
            let r = r.strip_prefix('(')?;
            let close = r.find(')')?;
            let rule = r[..close].trim().to_string();
            let reason = r[close + 1..]
                .trim()
                .trim_start_matches([':', '-', '—'])
                .trim()
                .trim_end_matches("*/")
                .trim()
                .to_string();
            Some((rule, reason))
        });
        match parsed {
            Some((rule, reason)) if RULES.contains(&rule.as_str()) && !reason.is_empty() => {
                allows.push(Allow {
                    path: class.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule,
                    reason,
                    used: false,
                });
            }
            Some((rule, reason)) => {
                let why = if !RULES.contains(&rule.as_str()) {
                    format!("unknown rule '{}'", rule)
                } else if reason.is_empty() {
                    "missing reason — every allow must say why the site is safe".to_string()
                } else {
                    "unparsable directive".to_string()
                };
                diags.push(Diagnostic::new(
                    MALFORMED_ALLOW,
                    &class.path,
                    t,
                    format!("bad ada-lint directive: {}", why),
                ));
            }
            None => {
                diags.push(Diagnostic::new(
                    MALFORMED_ALLOW,
                    &class.path,
                    t,
                    "bad ada-lint directive: expected `ada-lint: allow(rule-id) reason`"
                        .to_string(),
                ));
            }
        }
    }
    (allows, diags)
}

/// Crate-root check for `#![forbid(unsafe_code)]` — called once per crate
/// on its `src/lib.rs` token stream.
pub fn check_crate_root(class: &FileClass, tokens: &[Token]) -> Option<Diagnostic> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for j in 0..code.len().saturating_sub(6) {
        let texts: Vec<&str> = code[j..j + 7]
            .iter()
            .map(|&i| tokens[i].text.as_str())
            .collect();
        if texts == ["#", "!", "[", "forbid", "(", "unsafe_code", ")"] {
            return None;
        }
    }
    Some(Diagnostic {
        rule: FORBID_UNSAFE,
        path: class.path.clone(),
        line: 1,
        col: 1,
        message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        suppressed: None,
    })
}
