//! Workspace symbol table and call graph for the concurrency passes.
//!
//! Built purely over the lexer's token stream — no type resolution, no
//! macro expansion. The model recovers just enough structure for
//! cross-crate reasoning:
//!
//! * every `fn` item (free function or method) with its body extent and
//!   enclosing `impl` type, so call sites can be resolved to definitions;
//! * struct fields and statics whose declared type mentions `Mutex<` /
//!   `RwLock<` — the workspace's *named locks* (identity = field/static
//!   name; two fields sharing a name merge into one graph node, a
//!   deliberate over-approximation);
//! * call resolution: `self.method(..)` resolves through the enclosing
//!   `impl` block's type (precise), anything else resolves only when the
//!   simple name is defined exactly once in the workspace and is not a
//!   ubiquitous std method name ([`CALL_DENYLIST`]) — an unresolved call
//!   simply propagates nothing, keeping the analysis an
//!   under-approximation on calls rather than inventing false edges.
//!
//! The known over/under-approximations of the whole model are catalogued
//! in DESIGN.md §15.

use crate::lexer::{code_indices, Token, TokenKind};
use crate::rules::FileClass;
use std::collections::{BTreeMap, BTreeSet};

/// One scanned source file with its derived views, shared by every pass.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace classification (crate, path, bin-target flag).
    pub class: FileClass,
    /// The raw token stream.
    pub tokens: Vec<Token>,
    /// Indices of non-comment tokens ("code indices").
    pub code: Vec<usize>,
    /// Per raw-token flag: inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Build the derived views for one lexed file.
    pub fn new(class: FileClass, tokens: Vec<Token>) -> SourceFile {
        let code = code_indices(&tokens);
        let in_test = crate::rules::test_regions(&tokens);
        SourceFile {
            class,
            tokens,
            code,
            in_test,
        }
    }

    /// The token behind code index `j`.
    pub fn tok(&self, j: usize) -> &Token {
        &self.tokens[self.code[j]]
    }

    /// Text of the token behind code index `j`.
    pub fn txt(&self, j: usize) -> &str {
        self.tok(j).text.as_str()
    }

    /// Is code index `j` the punctuation char `c`?
    pub fn is_p(&self, j: usize, c: char) -> bool {
        j < self.code.len() && self.tok(j).is_punct(c)
    }

    /// Is the token behind code index `j` inside test code?
    pub fn in_test_at(&self, j: usize) -> bool {
        self.in_test[self.code[j]]
    }
}

/// A `fn` item discovered in the workspace.
#[derive(Debug)]
pub struct FnDef {
    /// Simple name (`lock_order` in `fn lock_order(..)`).
    pub name: String,
    /// `Type::name` for methods (from the enclosing `impl`), else `name`.
    pub qual: String,
    /// Index of the defining file in the scanned-file slice.
    pub file: usize,
    /// Code index of the `fn` keyword (signature start).
    pub header: usize,
    /// Code-index range of the body: `Some((open_brace, close_brace))`,
    /// `None` for bodiless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Declared inside test code — excluded from all analysis.
    pub is_test: bool,
}

/// The workspace-wide symbol table.
#[derive(Debug)]
pub struct Symbols {
    /// Every discovered function, in (file, position) order.
    pub functions: Vec<FnDef>,
    /// Simple name → indices into [`Symbols::functions`].
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Qualified name (`Type::name`) → indices into `functions`.
    pub by_qual: BTreeMap<String, Vec<usize>>,
    /// Names of struct fields / statics declared with a `Mutex<` /
    /// `RwLock<` type — the receivers `.read()` / `.write()` count for.
    pub lock_fields: BTreeSet<String>,
}

/// Method names too ubiquitous to resolve by simple name: std containers
/// and core traits define them everywhere, so a token-level match would
/// wire `map.insert(..)` to whatever workspace type also has an `insert`.
/// `self.method(..)` calls bypass this list (resolved via the impl type).
pub const CALL_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "drop",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "keys",
    "values",
    "entry",
    "drain",
    "clear",
    "extend",
    "append",
    "take",
    "replace",
    "send",
    "recv",
    "join",
    "lock",
    "read",
    "write",
    "map",
    "and_then",
    "unwrap_or",
    "min",
    "max",
    "count",
    "sum",
    "first",
    "last",
    "eq",
    "cmp",
    "hash",
    "flush",
    "spawn",
];

/// Scan every file and build the symbol table.
pub fn build_symbols(files: &[SourceFile]) -> Symbols {
    let mut functions = Vec::new();
    let mut lock_fields = BTreeSet::new();

    for (fidx, file) in files.iter().enumerate() {
        let impls = impl_extents(file);
        let n = file.code.len();
        let mut j = 0usize;
        while j < n {
            if file.tok(j).kind != TokenKind::Ident {
                j += 1;
                continue;
            }
            match file.txt(j) {
                "fn" if j + 1 < n && file.tok(j + 1).kind == TokenKind::Ident => {
                    let name = file.txt(j + 1).to_string();
                    let body = fn_body_extent(file, j + 2);
                    let qual = impls
                        .iter()
                        .rfind(|(s, e, _)| *s < j && j < *e)
                        .map(|(_, _, t)| format!("{}::{}", t, name))
                        .unwrap_or_else(|| name.clone());
                    functions.push(FnDef {
                        name,
                        qual,
                        file: fidx,
                        header: j,
                        body,
                        is_test: file.in_test_at(j),
                    });
                    j += 2;
                }
                "struct" if j + 1 < n && file.tok(j + 1).kind == TokenKind::Ident => {
                    collect_struct_lock_fields(file, j + 2, &mut lock_fields);
                    j += 2;
                }
                "static" => {
                    collect_static_lock(file, j + 1, &mut lock_fields);
                    j += 1;
                }
                _ => j += 1,
            }
        }
    }

    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in functions.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
        by_qual.entry(f.qual.clone()).or_default().push(i);
    }
    Symbols {
        functions,
        by_name,
        by_qual,
        lock_fields,
    }
}

/// Resolve a call site to function definitions, or `None` when ambiguous.
///
/// * `self_type`: the enclosing impl type when the call is `self.name(..)`.
/// * Method/free calls otherwise resolve only via a unique, non-denylisted
///   simple name.
pub fn resolve_call(symbols: &Symbols, name: &str, self_type: Option<&str>) -> Option<Vec<usize>> {
    if let Some(ty) = self_type {
        let qual = format!("{}::{}", ty, name);
        if let Some(defs) = symbols.by_qual.get(&qual) {
            return Some(defs.clone());
        }
        return None;
    }
    if CALL_DENYLIST.contains(&name) {
        return None;
    }
    match symbols.by_name.get(name) {
        Some(defs) if defs.len() == 1 => Some(defs.clone()),
        _ => None,
    }
}

/// `(start, end, type_name)` code-index extents of every `impl` block.
fn impl_extents(file: &SourceFile) -> Vec<(usize, usize, String)> {
    let n = file.code.len();
    let mut out = Vec::new();
    let mut j = 0usize;
    while j < n {
        if !file.tok(j).is_ident("impl") {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        if file.is_p(k, '<') {
            k = skip_angles(file, k);
        }
        // Walk the type path; `impl Trait for Type` resets at `for` so the
        // final identifier names the self type.
        let mut ty: Option<String> = None;
        while k < n {
            if file.is_p(k, '{') {
                break;
            }
            if file.tok(k).is_ident("for") {
                ty = None;
            } else if file.tok(k).kind == TokenKind::Ident {
                ty = Some(file.txt(k).to_string());
            } else if file.is_p(k, '<') {
                k = skip_angles(file, k);
                continue;
            }
            k += 1;
        }
        let Some(ty) = ty else {
            j = k + 1;
            continue;
        };
        let end = match matching_brace(file, k) {
            Some(e) => e,
            None => n.saturating_sub(1),
        };
        out.push((k, end, ty));
        j = k + 1; // nested impls (inside fn bodies) are still discovered
    }
    out
}

/// From just after `fn NAME`, find the body braces. Returns `None` for a
/// bodiless declaration (`fn f();` in a trait). Mirrors the item-extent
/// logic in `rules.rs`: the body is the first `{` at zero paren/bracket
/// depth after the signature.
fn fn_body_extent(file: &SourceFile, start: usize) -> Option<(usize, usize)> {
    let n = file.code.len();
    let mut pb = 0i32;
    let mut j = start;
    while j < n {
        if file.is_p(j, '(') || file.is_p(j, '[') {
            pb += 1;
        } else if file.is_p(j, ')') || file.is_p(j, ']') {
            pb -= 1;
        } else if pb == 0 && file.is_p(j, ';') {
            return None;
        } else if pb == 0 && file.is_p(j, '{') {
            let close = matching_brace(file, j)?;
            return Some((j, close));
        }
        j += 1;
    }
    None
}

/// Code index of the `}` matching the `{` at `open`.
pub fn matching_brace(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < file.code.len() {
        if file.is_p(j, '{') {
            depth += 1;
        } else if file.is_p(j, '}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Code index just past the `>` matching the `<` at `open` (angle
/// brackets in generics; `->` arrows never decrement).
fn skip_angles(file: &SourceFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < file.code.len() {
        if file.is_p(j, '<') {
            depth += 1;
        } else if file.is_p(j, '>') && !(j > 0 && file.is_p(j - 1, '-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Parse a struct body for fields typed `Mutex<..>` / `RwLock<..>`
/// (possibly wrapped, e.g. `Arc<Mutex<..>>`). `start` is just after the
/// struct name; generics and tuple structs are skipped.
fn collect_struct_lock_fields(file: &SourceFile, start: usize, out: &mut BTreeSet<String>) {
    let mut j = start;
    if file.is_p(j, '<') {
        j = skip_angles(file, j);
    }
    if !file.is_p(j, '{') {
        return; // tuple struct or unit struct
    }
    let end = match matching_brace(file, j) {
        Some(e) => e,
        None => return,
    };
    // Split the body into fields at commas that sit at depth 1 (angle
    // depth tracked too, so `BTreeMap<K, V>` commas don't split).
    let mut field_start = j + 1;
    let mut depth = 0i32;
    let mut k = j + 1;
    while k <= end {
        let boundary = (file.is_p(k, ',') && depth == 0) || k == end;
        if file.is_p(k, '{') || file.is_p(k, '(') || file.is_p(k, '[') {
            depth += 1;
        } else if file.is_p(k, '}') && k != end || file.is_p(k, ')') || file.is_p(k, ']') {
            depth -= 1;
        } else if file.is_p(k, '<') {
            depth += 1;
        } else if file.is_p(k, '>') && !file.is_p(k - 1, '-') {
            depth -= 1;
        }
        if boundary {
            record_lock_field(file, field_start, k, out);
            field_start = k + 1;
        }
        k += 1;
    }
}

/// One field region `NAME : TYPE` — record NAME when TYPE mentions a lock.
fn record_lock_field(file: &SourceFile, start: usize, end: usize, out: &mut BTreeSet<String>) {
    let mut name: Option<&str> = None;
    let mut k = start;
    while k + 1 < end {
        if file.tok(k).kind == TokenKind::Ident
            && file.is_p(k + 1, ':')
            && !(k + 2 < end && file.is_p(k + 2, ':'))
        {
            name = Some(file.txt(k));
            k += 2;
            break;
        }
        k += 1;
    }
    let Some(name) = name else { return };
    if type_mentions_lock(file, k, end) {
        out.insert(name.to_string());
    }
}

/// `static NAME: TYPE = ..;` — record NAME when TYPE mentions a lock.
fn collect_static_lock(file: &SourceFile, start: usize, out: &mut BTreeSet<String>) {
    let n = file.code.len();
    let mut j = start;
    if j < n && file.tok(j).is_ident("mut") {
        j += 1;
    }
    if j >= n || file.tok(j).kind != TokenKind::Ident {
        return;
    }
    let name = file.txt(j).to_string();
    if !file.is_p(j + 1, ':') {
        return;
    }
    let ty_start = j + 2;
    let mut end = ty_start;
    while end < n && !file.is_p(end, '=') && !file.is_p(end, ';') {
        end += 1;
    }
    if type_mentions_lock(file, ty_start, end) {
        out.insert(name);
    }
}

fn type_mentions_lock(file: &SourceFile, start: usize, end: usize) -> bool {
    (start..end).any(|k| {
        (file.tok(k).is_ident("Mutex") || file.tok(k).is_ident("RwLock"))
            && k + 1 < end
            && file.is_p(k + 1, '<')
    })
}
