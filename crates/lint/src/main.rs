//! `ada-lint` CLI.
//!
//! ```text
//! cargo run -p ada-lint -- --workspace            # report findings
//! cargo run -p ada-lint -- --workspace --deny     # exit 1 on any unsuppressed finding
//! cargo run -p ada-lint -- --workspace --json LINT.json
//! cargo run -p ada-lint -- --self-check           # run the fixture corpus
//! ```
//!
//! `--root <dir>` overrides workspace discovery (default: walk up from the
//! current directory to the first `Cargo.toml` with `[workspace]`).
//!
//! `--self-check` lints every fixture workspace under
//! `crates/lint/tests/fixtures/` that carries an `EXPECT.txt` and compares
//! the diagnostics line-by-line against it (format:
//! `rule path line col open|suppressed`), exiting nonzero on any mismatch —
//! the analyzer proves its own rules still fire before gating the tree.

use std::path::{Path, PathBuf};

fn main() {
    let mut deny = false;
    let mut self_check = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {} // the default scan mode; accepted for clarity
            "--deny" => deny = true,
            "--self-check" => self_check = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => die("--json needs a path argument"),
            },
            "--root" => match args.next() {
                Some(p) => root_override = Some(PathBuf::from(p)),
                None => die("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: ada-lint [--workspace] [--deny] [--json PATH] [--root DIR] \
                     [--self-check]\n\
                     Lints crates/*/src/**, src/** and examples/** with ADA's project rules \
                     (see DESIGN.md §9 and §15).\n\
                     --self-check runs the fixture corpus under crates/lint/tests/fixtures/ \
                     against each EXPECT.txt and exits nonzero on any mismatch."
                );
                return;
            }
            other => die(&format!("unknown argument '{}'", other)),
        }
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => die(&format!("cannot determine current directory: {}", e)),
            };
            match ada_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => die(&e.to_string()),
            }
        }
    };

    if self_check {
        run_self_check(&root);
    }

    let report = match ada_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => die(&format!("lint failed: {}", e)),
    };

    for d in report.unsuppressed() {
        println!("{}:{}:{} [{}] {}", d.path, d.line, d.col, d.rule, d.message);
    }

    let open = report.unsuppressed().count();
    let quiet = report.suppressed().count();
    println!(
        "ada-lint: {} finding{} ({} suppressed) across {} files",
        open,
        if open == 1 { "" } else { "s" },
        quiet,
        report.files_scanned
    );
    for (rule, u, s) in report.rule_counts() {
        if u + s > 0 {
            println!("  {:<28} {:>4} open {:>4} suppressed", rule, u, s);
        }
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json().to_vec()) {
            die(&format!("cannot write {}: {}", path.display(), e));
        }
        println!("wrote {}", path.display());
    }

    if deny && open > 0 {
        std::process::exit(1);
    }
}

/// `--self-check`: lint every fixture workspace and compare against its
/// `EXPECT.txt` (one `rule path line col open|suppressed` line per
/// diagnostic, in report order; `#` comments and blank lines ignored).
fn run_self_check(root: &Path) -> ! {
    let fixtures = root.join("crates/lint/tests/fixtures");
    let entries = match std::fs::read_dir(&fixtures) {
        Ok(rd) => rd,
        Err(e) => die(&format!("cannot read {}: {}", fixtures.display(), e)),
    };
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("EXPECT.txt").is_file())
        .collect();
    dirs.sort();
    if dirs.is_empty() {
        die(&format!(
            "no fixture with an EXPECT.txt under {}",
            fixtures.display()
        ));
    }

    let mut failed = 0usize;
    for dir in &dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let expect_path = dir.join("EXPECT.txt");
        let expected: Vec<String> = match std::fs::read_to_string(&expect_path) {
            Ok(body) => body
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect(),
            Err(e) => die(&format!("cannot read {}: {}", expect_path.display(), e)),
        };
        let report = match ada_lint::run_workspace(dir) {
            Ok(r) => r,
            Err(e) => die(&format!("lint failed on fixture {}: {}", name, e)),
        };
        let actual: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{} {} {} {} {}",
                    d.rule,
                    d.path,
                    d.line,
                    d.col,
                    if d.suppressed.is_some() {
                        "suppressed"
                    } else {
                        "open"
                    }
                )
            })
            .collect();
        if actual == expected {
            println!("self-check {}: ok ({} diagnostics)", name, actual.len());
            continue;
        }
        failed += 1;
        println!("self-check {}: MISMATCH", name);
        for line in &expected {
            if !actual.contains(line) {
                println!("  missing:    {}", line);
            }
        }
        for line in &actual {
            if !expected.contains(line) {
                println!("  unexpected: {}", line);
            }
        }
    }
    println!(
        "ada-lint self-check: {}/{} fixtures ok",
        dirs.len() - failed,
        dirs.len()
    );
    std::process::exit(if failed > 0 { 1 } else { 0 });
}

fn die(msg: &str) -> ! {
    eprintln!("ada-lint: {}", msg);
    std::process::exit(2);
}
