//! `ada-lint` CLI.
//!
//! ```text
//! cargo run -p ada-lint -- --workspace            # report findings
//! cargo run -p ada-lint -- --workspace --deny     # exit 1 on any unsuppressed finding
//! cargo run -p ada-lint -- --workspace --json LINT.json
//! ```
//!
//! `--root <dir>` overrides workspace discovery (default: walk up from the
//! current directory to the first `Cargo.toml` with `[workspace]`).

use std::path::PathBuf;

fn main() {
    let mut deny = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {} // the only scan mode; accepted for clarity
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => die("--json needs a path argument"),
            },
            "--root" => match args.next() {
                Some(p) => root_override = Some(PathBuf::from(p)),
                None => die("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: ada-lint [--workspace] [--deny] [--json PATH] [--root DIR]\n\
                     Lints crates/*/src/**/*.rs with ADA's project rules; see DESIGN.md §9."
                );
                return;
            }
            other => die(&format!("unknown argument '{}'", other)),
        }
    }

    let root = match root_override {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => die(&format!("cannot determine current directory: {}", e)),
            };
            match ada_lint::find_workspace_root(&cwd) {
                Ok(r) => r,
                Err(e) => die(&e.to_string()),
            }
        }
    };

    let report = match ada_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => die(&format!("lint failed: {}", e)),
    };

    for d in report.unsuppressed() {
        println!("{}:{}:{} [{}] {}", d.path, d.line, d.col, d.rule, d.message);
    }

    let open = report.unsuppressed().count();
    let quiet = report.suppressed().count();
    println!(
        "ada-lint: {} finding{} ({} suppressed) across {} files",
        open,
        if open == 1 { "" } else { "s" },
        quiet,
        report.files_scanned
    );
    for (rule, u, s) in report.rule_counts() {
        if u + s > 0 {
            println!("  {:<28} {:>4} open {:>4} suppressed", rule, u, s);
        }
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json().to_vec()) {
            die(&format!("cannot write {}: {}", path.display(), e));
        }
        println!("wrote {}", path.display());
    }

    if deny && open > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("ada-lint: {}", msg);
    std::process::exit(2);
}
