//! Cross-file semantic passes: `error-kind-exhaustive` and
//! `metric-name-registered`.
//!
//! Telemetry counts failures as `ada.{op}.err.{kind}`, so `AdaError::kind()`
//! is load-bearing: every variant must map to its *own* stable kind string.
//! The compiler guarantees the match covers every variant only while nobody
//! writes a `_ =>` arm — and it never checks distinctness. This pass walks
//! the tokens of `crates/core` (wherever the enum and impl live), recovers
//! the variant list and the `kind()` arm list, and flags:
//!
//! * a variant with no arm in `kind()` (only possible via a wildcard),
//! * two variants sharing one kind string,
//! * a `_ =>` wildcard arm, which would let future variants silently alias,
//! * a missing enum or missing `kind()` (configuration rot).
//!
//! These diagnostics are **not** suppressible: a wrong kind map silently
//! corrupts error-rate telemetry, so there is no safe reason to allow it.
//!
//! The second pass, [`check_metric_names`], keeps `METRICS.md` the single
//! source of truth for the observability vocabulary: every string literal
//! handed to a telemetry sink (`counter`/`gauge`/`histogram`/`span`/
//! `record`/`record_span`/`root`, function or macro form) must appear
//! backtick-quoted in the catalog. Dynamically built names (`format!`
//! families) are invisible to the pass and are documented in the
//! catalog's prose instead. Like the kind pass, findings here are not
//! suppressible — an uncatalogued name is fixed by registering it.
//!
//! The third pass, [`check_metric_usage`], is the inverse: a *concrete*
//! catalogued name (dot-separated, not a `{…}` family) that no scanned
//! crate ever mentions in a string literal is stale and flagged at its
//! position in `METRICS.md`, so the catalog cannot drift ahead of the
//! code. Also not suppressible — a dead entry is deleted, not waived.

use crate::callgraph::SourceFile;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, ERROR_KIND, METRIC_NAME, METRIC_UNUSED};
use std::collections::BTreeSet;

/// Name of the error enum whose `kind()` map is checked.
pub const ERROR_ENUM: &str = "AdaError";

/// A parsed `kind()` arm: variant name → kind string.
#[derive(Debug)]
struct KindArm {
    variant: String,
    kind: String,
    line: u32,
    col: u32,
}

/// Run the pass over the scanned files. The enum and its `kind()` map live
/// in `crates/core` today; `frontend` (admission-control variants' call
/// sites), `cache`, and the wire-protocol crates (`proto` carries the
/// structural error codec, `server`/`client` its endpoints) are scanned
/// too so the pass keeps working if any of them ever hosts them.
/// Workspaces with none of those crates (rule-test fixtures) have nothing
/// to check.
pub fn check_error_kinds(files: &[SourceFile]) -> Vec<Diagnostic> {
    let scope: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            matches!(
                f.class.crate_name.as_str(),
                "core" | "frontend" | "cache" | "proto" | "server" | "client"
            )
        })
        .collect();
    if scope.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();

    let enum_site = scope
        .iter()
        .find_map(|f| find_enum_variants(&f.tokens).map(|v| (f.class.path.as_str(), v)));
    let kind_site = scope
        .iter()
        .find_map(|f| find_kind_arms(&f.tokens).map(|v| (f.class.path.as_str(), v)));

    let (enum_path, variants) = match enum_site {
        Some(site) => site,
        None => {
            diags.push(at(
                "crates/core",
                1,
                1,
                format!(
                    "enum {} not found in crates/core — the error-kind pass has nothing to check",
                    ERROR_ENUM
                ),
            ));
            return diags;
        }
    };
    let (kind_path, arms) = match kind_site {
        Some(site) => site,
        None => {
            diags.push(at(
                enum_path,
                1,
                1,
                format!(
                    "{}::kind() not found — telemetry cannot classify errors without it",
                    ERROR_ENUM
                ),
            ));
            return diags;
        }
    };

    // Every variant must have an arm.
    for (variant, line, col) in &variants {
        if variant == "_" {
            continue;
        }
        if !arms.iter().any(|a| &a.variant == variant) {
            diags.push(at(
                enum_path,
                *line,
                *col,
                format!(
                    "{}::{} has no arm in kind(); every variant needs its own kind string",
                    ERROR_ENUM, variant
                ),
            ));
        }
    }

    // Kind strings must be pairwise distinct.
    for (i, a) in arms.iter().enumerate() {
        if let Some(b) = arms[..i].iter().find(|b| b.kind == a.kind) {
            diags.push(at(
                kind_path,
                a.line,
                a.col,
                format!(
                    "kind \"{}\" is reused by {}::{} and {}::{}; telemetry would merge their \
                     error rates",
                    a.kind, ERROR_ENUM, b.variant, ERROR_ENUM, a.variant
                ),
            ));
        }
    }

    // No wildcard arm.
    for a in &arms {
        if a.variant == "_" {
            diags.push(at(
                kind_path,
                a.line,
                a.col,
                "wildcard `_ =>` arm in kind(); new variants would silently alias an existing \
                 kind instead of failing the build"
                    .to_string(),
            ));
        }
    }

    diags
}

/// Idents that record a metric or span when called with a string-literal
/// first argument: registry sinks (`counter`/`gauge`/`histogram`), trace
/// and stage-span openers (`span`/`root`/`root_remote`, fn or macro
/// form), and the pre-measured recorders (`record`/`record_span`).
const METRIC_SINKS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "span",
    "record",
    "record_span",
    "root",
    "root_remote",
];

/// Run the metric-name pass over every scanned file, against the
/// backtick-quoted names registered in `catalog` (the text of
/// `METRICS.md`). Test code is exempt (tests mint throwaway names).
pub fn check_metric_names(files: &[SourceFile], catalog: &str) -> Vec<Diagnostic> {
    let registered = catalog_names(catalog);
    let mut diags = Vec::new();
    for file in files {
        for j in 0..file.code.len() {
            let t = file.tok(j);
            if t.kind != TokenKind::Ident
                || file.in_test_at(j)
                || !METRIC_SINKS.contains(&t.text.as_str())
            {
                continue;
            }
            // Optional `!` (macro form), then `(`, then a string literal.
            let mut k = j + 1;
            if file.is_p(k, '!') {
                k += 1;
            }
            if !file.is_p(k, '(') {
                continue;
            }
            k += 1;
            if !(k < file.code.len() && file.tok(k).kind == TokenKind::Str) {
                continue;
            }
            let lit = file.tok(k);
            let name = lit
                .text
                .trim_start_matches('r')
                .trim_matches('#')
                .trim_matches('"');
            if !registered.contains(name) {
                diags.push(Diagnostic {
                    rule: METRIC_NAME,
                    path: file.class.path.clone(),
                    line: lit.line,
                    col: lit.col,
                    message: format!(
                        "metric/span name \"{}\" is not registered in METRICS.md; add it to the \
                         catalog (or rename to a registered family)",
                        name
                    ),
                    suppressed: None,
                });
            }
        }
    }
    diags
}

/// The inverse catalog pass: flag concrete catalogued names nothing emits.
///
/// A catalog entry is *concrete* when it looks like a metric name rather
/// than prose or a dynamic family: it contains a `.` and none of `{`,
/// space, `/`, `(`, `:` (those mark `{op}` families, file names, command
/// lines, and prose backticks). A concrete name counts as used when any
/// string literal in any scanned file — tests included, since helper
/// literals and assertions keep names alive — contains it as a substring;
/// the substring match also keeps prefixes of `format!`-built names alive.
pub fn check_metric_usage(files: &[SourceFile], catalog: &str) -> Vec<Diagnostic> {
    // First occurrence of each concrete name, with its 1-based span in the
    // catalog (anchored at the opening backtick).
    let mut entries: Vec<(&str, u32, u32)> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (lineno, line) in catalog.lines().enumerate() {
        let mut rest = line;
        let mut consumed = 0usize; // chars consumed from the line so far
        while let Some(open) = rest.find('`') {
            let open_col = consumed + rest[..open].chars().count() + 1;
            rest = &rest[open + 1..];
            consumed = open_col; // backtick itself is one char
            let Some(close) = rest.find('`') else { break };
            let name = &rest[..close];
            let concrete = name.contains('.')
                && !name.contains('{')
                && !name.contains(' ')
                && !name.contains('/')
                && !name.contains('(')
                && !name.contains(':');
            if concrete && seen.insert(name) {
                entries.push((name, (lineno + 1) as u32, open_col as u32));
            }
            consumed += name.chars().count() + 1;
            rest = &rest[close + 1..];
        }
    }
    entries
        .into_iter()
        .filter(|(name, _, _)| {
            !files.iter().any(|f| {
                f.tokens
                    .iter()
                    .any(|t| t.kind == TokenKind::Str && t.text.contains(name))
            })
        })
        .map(|(name, line, col)| Diagnostic {
            rule: METRIC_UNUSED,
            path: "METRICS.md".to_string(),
            line,
            col,
            message: format!(
                "catalogued metric/span name `{}` is never emitted by any scanned crate; the \
                 catalog has drifted — delete the stale entry (or wire up the emitter)",
                name
            ),
            suppressed: None,
        })
        .collect()
}

/// Every backtick-quoted name in the catalog. Names containing `{` are
/// dynamic-family *documentation* and never match a literal, but keeping
/// them out of the set costs nothing and keeps intent explicit.
fn catalog_names(catalog: &str) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    let mut rest = catalog;
    while let Some(open) = rest.find('`') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('`') else { break };
        let name = &rest[..close];
        if !name.is_empty() && !name.contains('{') {
            names.insert(name);
        }
        rest = &rest[close + 1..];
    }
    names
}

fn at(path: &str, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule: ERROR_KIND,
        path: path.to_string(),
        line,
        col,
        message,
        suppressed: None,
    }
}

/// Find `enum AdaError { … }` and return its variant names with spans.
fn find_enum_variants(tokens: &[Token]) -> Option<Vec<(String, u32, u32)>> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let is_p = |j: usize, c: char| {
        tokens[code[j]].kind == TokenKind::Punct && tokens[code[j]].text.starts_with(c)
    };
    let txt = |j: usize| tokens[code[j]].text.as_str();

    let mut j = 0usize;
    let start = loop {
        if j + 2 >= code.len() {
            return None;
        }
        if txt(j) == "enum" && txt(j + 1) == ERROR_ENUM && is_p(j + 2, '{') {
            break j + 3;
        }
        j += 1;
    };

    let mut variants = Vec::new();
    let mut expect_variant = true;
    let mut j = start;
    let mut depth = 1i32; // inside the enum's `{`
    while j < code.len() && depth > 0 {
        if is_p(j, '{') || is_p(j, '(') || is_p(j, '[') {
            depth += 1;
        } else if is_p(j, '}') || is_p(j, ')') || is_p(j, ']') {
            depth -= 1;
        } else if depth == 1 {
            if is_p(j, ',') {
                expect_variant = true;
            } else if is_p(j, '#') {
                // attribute on the next variant; skip its [...] group
            } else if expect_variant && tokens[code[j]].kind == TokenKind::Ident {
                let t = &tokens[code[j]];
                variants.push((t.text.clone(), t.line, t.col));
                expect_variant = false;
            }
        }
        j += 1;
    }
    Some(variants)
}

/// Find `fn kind(…) { … match … { arms } }` and parse `AdaError::Variant`
/// (or `_`) patterns with the string literal each arm returns.
fn find_kind_arms(tokens: &[Token]) -> Option<Vec<KindArm>> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let is_p = |j: usize, c: char| {
        tokens[code[j]].kind == TokenKind::Punct && tokens[code[j]].text.starts_with(c)
    };
    let txt = |j: usize| tokens[code[j]].text.as_str();

    // Locate `fn kind`.
    let mut j = 0usize;
    let fn_at = loop {
        if j + 1 >= code.len() {
            return None;
        }
        if txt(j) == "fn" && txt(j + 1) == "kind" {
            break j;
        }
        j += 1;
    };

    // Find the `match` keyword, then its `{`.
    let mut j = fn_at;
    while j < code.len() && txt(j) != "match" {
        j += 1;
    }
    while j < code.len() && !is_p(j, '{') {
        j += 1;
    }
    if j >= code.len() {
        return None;
    }

    let mut arms = Vec::new();
    let mut depth = 1i32;
    let mut pending: Vec<(String, u32, u32)> = Vec::new();
    let mut k = j + 1;
    while k < code.len() && depth > 0 {
        if is_p(k, '{') || is_p(k, '(') || is_p(k, '[') {
            depth += 1;
        } else if is_p(k, '}') || is_p(k, ')') || is_p(k, ']') {
            depth -= 1;
        } else if depth == 1 {
            if txt(k) == ERROR_ENUM
                && k + 3 < code.len()
                && is_p(k + 1, ':')
                && is_p(k + 2, ':')
                && tokens[code[k + 3]].kind == TokenKind::Ident
            {
                let t = &tokens[code[k + 3]];
                pending.push((t.text.clone(), t.line, t.col));
                k += 4;
                continue;
            }
            if txt(k) == "_" && k + 1 < code.len() && is_p(k + 1, '=') {
                let t = &tokens[code[k]];
                pending.push(("_".to_string(), t.line, t.col));
            }
            if is_p(k, '=') && k + 1 < code.len() && is_p(k + 1, '>') {
                // Arm body: record the string literal it yields, if any.
                if k + 2 < code.len() && tokens[code[k + 2]].kind == TokenKind::Str {
                    let lit = &tokens[code[k + 2]].text;
                    let kind = lit.trim_matches('"').to_string();
                    for (variant, line, col) in pending.drain(..) {
                        arms.push(KindArm {
                            variant,
                            kind: kind.clone(),
                            line,
                            col,
                        });
                    }
                } else {
                    pending.clear();
                }
                k += 2;
                continue;
            }
        }
        k += 1;
    }
    Some(arms)
}
