//! Cross-file semantic pass: `error-kind-exhaustive`.
//!
//! Telemetry counts failures as `ada.{op}.err.{kind}`, so `AdaError::kind()`
//! is load-bearing: every variant must map to its *own* stable kind string.
//! The compiler guarantees the match covers every variant only while nobody
//! writes a `_ =>` arm — and it never checks distinctness. This pass walks
//! the tokens of `crates/core` (wherever the enum and impl live), recovers
//! the variant list and the `kind()` arm list, and flags:
//!
//! * a variant with no arm in `kind()` (only possible via a wildcard),
//! * two variants sharing one kind string,
//! * a `_ =>` wildcard arm, which would let future variants silently alias,
//! * a missing enum or missing `kind()` (configuration rot).
//!
//! These diagnostics are **not** suppressible: a wrong kind map silently
//! corrupts error-rate telemetry, so there is no safe reason to allow it.

use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, ERROR_KIND};

/// Name of the error enum whose `kind()` map is checked.
pub const ERROR_ENUM: &str = "AdaError";

/// A parsed `kind()` arm: variant name → kind string.
#[derive(Debug)]
struct KindArm {
    variant: String,
    kind: String,
    line: u32,
    col: u32,
}

/// Run the pass over `(path, tokens)` pairs from the core crate.
pub fn check_error_kinds(files: &[(String, Vec<Token>)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let enum_site = files
        .iter()
        .find_map(|(p, toks)| find_enum_variants(toks).map(|v| (p.as_str(), v)));
    let kind_site = files
        .iter()
        .find_map(|(p, toks)| find_kind_arms(toks).map(|v| (p.as_str(), v)));

    let (enum_path, variants) = match enum_site {
        Some(site) => site,
        None => {
            diags.push(at(
                "crates/core",
                1,
                1,
                format!(
                    "enum {} not found in crates/core — the error-kind pass has nothing to check",
                    ERROR_ENUM
                ),
            ));
            return diags;
        }
    };
    let (kind_path, arms) = match kind_site {
        Some(site) => site,
        None => {
            diags.push(at(
                enum_path,
                1,
                1,
                format!(
                    "{}::kind() not found — telemetry cannot classify errors without it",
                    ERROR_ENUM
                ),
            ));
            return diags;
        }
    };

    // Every variant must have an arm.
    for (variant, line, col) in &variants {
        if variant == "_" {
            continue;
        }
        if !arms.iter().any(|a| &a.variant == variant) {
            diags.push(at(
                enum_path,
                *line,
                *col,
                format!(
                    "{}::{} has no arm in kind(); every variant needs its own kind string",
                    ERROR_ENUM, variant
                ),
            ));
        }
    }

    // Kind strings must be pairwise distinct.
    for (i, a) in arms.iter().enumerate() {
        if let Some(b) = arms[..i].iter().find(|b| b.kind == a.kind) {
            diags.push(at(
                kind_path,
                a.line,
                a.col,
                format!(
                    "kind \"{}\" is reused by {}::{} and {}::{}; telemetry would merge their \
                     error rates",
                    a.kind, ERROR_ENUM, b.variant, ERROR_ENUM, a.variant
                ),
            ));
        }
    }

    // No wildcard arm.
    for a in &arms {
        if a.variant == "_" {
            diags.push(at(
                kind_path,
                a.line,
                a.col,
                "wildcard `_ =>` arm in kind(); new variants would silently alias an existing \
                 kind instead of failing the build"
                    .to_string(),
            ));
        }
    }

    diags
}

fn at(path: &str, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule: ERROR_KIND,
        path: path.to_string(),
        line,
        col,
        message,
        suppressed: None,
    }
}

/// Find `enum AdaError { … }` and return its variant names with spans.
fn find_enum_variants(tokens: &[Token]) -> Option<Vec<(String, u32, u32)>> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let is_p = |j: usize, c: char| {
        tokens[code[j]].kind == TokenKind::Punct && tokens[code[j]].text.starts_with(c)
    };
    let txt = |j: usize| tokens[code[j]].text.as_str();

    let mut j = 0usize;
    let start = loop {
        if j + 2 >= code.len() {
            return None;
        }
        if txt(j) == "enum" && txt(j + 1) == ERROR_ENUM && is_p(j + 2, '{') {
            break j + 3;
        }
        j += 1;
    };

    let mut variants = Vec::new();
    let mut expect_variant = true;
    let mut j = start;
    let mut depth = 1i32; // inside the enum's `{`
    while j < code.len() && depth > 0 {
        if is_p(j, '{') || is_p(j, '(') || is_p(j, '[') {
            depth += 1;
        } else if is_p(j, '}') || is_p(j, ')') || is_p(j, ']') {
            depth -= 1;
        } else if depth == 1 {
            if is_p(j, ',') {
                expect_variant = true;
            } else if is_p(j, '#') {
                // attribute on the next variant; skip its [...] group
            } else if expect_variant && tokens[code[j]].kind == TokenKind::Ident {
                let t = &tokens[code[j]];
                variants.push((t.text.clone(), t.line, t.col));
                expect_variant = false;
            }
        }
        j += 1;
    }
    Some(variants)
}

/// Find `fn kind(…) { … match … { arms } }` and parse `AdaError::Variant`
/// (or `_`) patterns with the string literal each arm returns.
fn find_kind_arms(tokens: &[Token]) -> Option<Vec<KindArm>> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let is_p = |j: usize, c: char| {
        tokens[code[j]].kind == TokenKind::Punct && tokens[code[j]].text.starts_with(c)
    };
    let txt = |j: usize| tokens[code[j]].text.as_str();

    // Locate `fn kind`.
    let mut j = 0usize;
    let fn_at = loop {
        if j + 1 >= code.len() {
            return None;
        }
        if txt(j) == "fn" && txt(j + 1) == "kind" {
            break j;
        }
        j += 1;
    };

    // Find the `match` keyword, then its `{`.
    let mut j = fn_at;
    while j < code.len() && txt(j) != "match" {
        j += 1;
    }
    while j < code.len() && !is_p(j, '{') {
        j += 1;
    }
    if j >= code.len() {
        return None;
    }

    let mut arms = Vec::new();
    let mut depth = 1i32;
    let mut pending: Vec<(String, u32, u32)> = Vec::new();
    let mut k = j + 1;
    while k < code.len() && depth > 0 {
        if is_p(k, '{') || is_p(k, '(') || is_p(k, '[') {
            depth += 1;
        } else if is_p(k, '}') || is_p(k, ')') || is_p(k, ']') {
            depth -= 1;
        } else if depth == 1 {
            if txt(k) == ERROR_ENUM
                && k + 3 < code.len()
                && is_p(k + 1, ':')
                && is_p(k + 2, ':')
                && tokens[code[k + 3]].kind == TokenKind::Ident
            {
                let t = &tokens[code[k + 3]];
                pending.push((t.text.clone(), t.line, t.col));
                k += 4;
                continue;
            }
            if txt(k) == "_" && k + 1 < code.len() && is_p(k + 1, '=') {
                let t = &tokens[code[k]];
                pending.push(("_".to_string(), t.line, t.col));
            }
            if is_p(k, '=') && k + 1 < code.len() && is_p(k + 1, '>') {
                // Arm body: record the string literal it yields, if any.
                if k + 2 < code.len() && tokens[code[k + 2]].kind == TokenKind::Str {
                    let lit = &tokens[code[k + 2]].text;
                    let kind = lit.trim_matches('"').to_string();
                    for (variant, line, col) in pending.drain(..) {
                        arms.push(KindArm {
                            variant,
                            kind: kind.clone(),
                            line,
                            col,
                        });
                    }
                } else {
                    pending.clear();
                }
                k += 2;
                continue;
            }
        }
        k += 1;
    }
    Some(arms)
}
