//! `ada-server`: a TCP daemon exposing the in-process
//! [`ada_frontend::Frontend`] over the `ada-proto` wire protocol.
//!
//! The daemon adds transport, not semantics: every request decoded off
//! the wire is driven through [`Frontend::submit_rooted`] under a trace
//! root minted from the wire-carried trace id
//! ([`trace::root_remote`]), so admission, shedding, deadlines, and the
//! flight-recorder tree behave exactly as they do for an in-process
//! caller — the protocol equivalence suite holds the two paths
//! byte-identical.
//!
//! ## Threading model
//!
//! One nonblocking accept loop polls a stop flag; each accepted
//! connection gets three threads joined at connection teardown:
//!
//! - a **reader** that deframes and decodes requests (with an idle
//!   timeout between frames and a whole-frame deadline once the first
//!   byte of a frame arrives, which evicts slow-loris peers),
//! - an **executor** that drives decoded requests through the frontend
//!   (in-flight bounded by the `sync_channel` between reader and
//!   executor), and
//! - a **writer** that frames responses back to the socket.
//!
//! ## Shutdown sequence
//!
//! [`Server::shutdown`] sets the stop flag, then the accept loop calls
//! `TcpStream::shutdown(Both)` on every registered connection. Readers
//! observe EOF (or the flag at their next poll tick) and drop their job
//! channel; executors drain and drop the response channel; writers
//! flush what remains and exit. The accept thread joins every
//! connection handler before exiting, so no thread outlives the
//! `Server`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ada_core::{AdaError, IngestInput};
use ada_frontend::{Frontend, Reply, Request};
use ada_mdmodel::Tag;
use ada_proto::{
    parse_header, verify_payload, write_frame, ProtoError, RequestBody, RequestEnvelope,
    ResponseBody, ResponseEnvelope, WireIngestReport, WireQueryReport, DEFAULT_MAX_FRAME,
    HEADER_LEN,
};
use ada_telemetry::trace;
use parking_lot::Mutex;

/// Tuning knobs for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Connections beyond this are answered with a typed `Overloaded`
    /// error frame and closed.
    pub max_connections: usize,
    /// Decoded requests buffered between a connection's reader and its
    /// executor; the reader stops deframing once this many are pending.
    pub max_in_flight: usize,
    /// A connection idle (no frame started) longer than this is closed.
    pub idle_timeout: Duration,
    /// A frame that started arriving must complete within this window —
    /// the slow-loris bound.
    pub frame_timeout: Duration,
    /// Receive-side payload limit; larger declared lengths are rejected
    /// before allocation.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_in_flight: 4,
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME,
        }
    }
}

/// How often blocked socket reads and the accept loop wake to check the
/// stop flag and deadlines.
const POLL_TICK: Duration = Duration::from_millis(25);

struct Shared {
    frontend: Arc<Frontend>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    /// Clones of live connection sockets, keyed by connection id, so
    /// shutdown can sever every socket without waiting for idle timers.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = match stream.try_clone() {
            Ok(c) => c,
            Err(_) => return None,
        };
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().push((id, clone));
        Some(id)
    }

    fn unregister(&self, id: u64) {
        let mut conns = self.conns.lock();
        conns.retain(|(cid, _)| *cid != id);
        ada_telemetry::global()
            .gauge("server.connections.active")
            .set(conns.len() as i64);
    }
}

/// A running daemon. Dropping it without calling [`Server::shutdown`]
/// shuts it down (threads are joined either way).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `config.addr` and start serving `frontend`.
    pub fn start(frontend: Arc<Frontend>, config: ServerConfig) -> Result<Server, AdaError> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| AdaError::Network {
            detail: format!("bind {}: {}", config.addr, e),
        })?;
        let local_addr = listener.local_addr().map_err(|e| AdaError::Network {
            detail: format!("local_addr: {}", e),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AdaError::Network {
                detail: format!("set_nonblocking: {}", e),
            })?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            frontend,
            config,
            stop: Arc::clone(&stop),
            conns: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(1),
        });
        // The accept loop owns every per-connection handler handle and
        // joins them before exiting, so joining it in `shutdown()` means
        // no server thread is left running.
        let accept = thread::Builder::new()
            .name("ada-server-accept".to_string())
            .spawn(move || accept_loop(listener, shared))
            .map_err(|e| AdaError::Network {
                detail: format!("spawn accept loop: {}", e),
            })?;
        Ok(Server {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, sever live connections, and join every server
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            if handle.join().is_err() {
                ada_telemetry::global()
                    .counter("server.connection.panics")
                    .inc();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let registry = ada_telemetry::global();
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                registry.counter("server.connections.accepted").inc();
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let active = shared.conns.lock().len();
                if active >= shared.config.max_connections {
                    registry.counter("server.connections.rejected").inc();
                    reject_connection(stream, active);
                    continue;
                }
                let Some(conn_id) = shared.register(&stream) else {
                    continue;
                };
                registry
                    .gauge("server.connections.active")
                    .set((active + 1) as i64);
                let conn_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name(format!("ada-server-conn-{}", conn_id))
                    .spawn(move || handle_connection(conn_shared, stream, conn_id, peer));
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => shared.unregister(conn_id),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_TICK);
            }
            Err(_) => {
                registry.counter("server.accept.errors").inc();
                thread::sleep(POLL_TICK);
            }
        }
    }
    // Sever every live socket so blocked readers observe EOF promptly.
    for (_, stream) in shared.conns.lock().iter() {
        let _ = stream.shutdown(Shutdown::Both);
    }
    for handle in handlers {
        if handle.join().is_err() {
            registry.counter("server.connection.panics").inc();
        }
    }
}

/// Tell an over-limit peer why it is being dropped (best-effort) with a
/// connection-level (id 0) typed error frame.
fn reject_connection(mut stream: TcpStream, active: usize) {
    let resp = ResponseEnvelope {
        id: 0,
        body: ResponseBody::Error(AdaError::Overloaded {
            queue_depth: active,
            retry_after: Duration::from_millis(100),
        }),
    };
    let _ = write_frame(&mut stream, &resp.encode());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Why the reader stopped deframing.
enum ReadEnd {
    /// Peer closed cleanly at a frame boundary.
    Eof,
    /// Stop flag observed.
    Stopping,
    /// Idle/frame deadline hit or a transport/framing violation; the
    /// byte stream is no longer trustworthy, so the connection closes
    /// after a best-effort error frame.
    Fatal(ProtoError),
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream, conn_id: u64, peer: SocketAddr) {
    let registry = ada_telemetry::global();
    let config = shared.config.clone();

    // reader -> executor (bounds in-flight requests per connection) and
    // executor/reader -> writer (encoded response frames).
    let (job_tx, job_rx) = sync_channel::<RequestEnvelope>(config.max_in_flight.max(1));
    let (resp_tx, resp_rx) = sync_channel::<Vec<u8>>(config.max_in_flight.max(1) + 1);

    let writer = stream.try_clone().ok().map(|mut wstream| {
        // ada-lint: allow(trace-context-propagated) byte pump: frames reaching this thread were already sealed under their request ctx by the executor
        thread::spawn(move || {
            for frame in resp_rx {
                if write_frame(&mut wstream, &frame).is_err() {
                    ada_telemetry::global().counter("server.write.errors").inc();
                    break;
                }
                ada_telemetry::global()
                    .counter("server.bytes.written")
                    .add(frame.len() as u64 + HEADER_LEN as u64);
            }
            let _ = wstream.shutdown(Shutdown::Write);
        })
    });

    let exec_frontend = Arc::clone(&shared.frontend);
    let exec_resp_tx = resp_tx.clone();
    let executor = thread::spawn(move || {
        for env in job_rx {
            let resp = execute_request(&exec_frontend, env);
            if exec_resp_tx.send(resp.encode()).is_err() {
                break; // writer is gone; the reader will notice EOF/stop
            }
        }
    });

    let end = read_loop(&shared, &stream, &config, &job_tx, &resp_tx);

    if let ReadEnd::Fatal(proto_err) = &end {
        registry.counter("server.protocol.errors").inc();
        let resp = ResponseEnvelope {
            id: 0,
            body: ResponseBody::Error(AdaError::Network {
                detail: format!("{} (peer {})", proto_err, peer),
            }),
        };
        let _ = resp_tx.send(resp.encode());
    }

    // Teardown in dependency order: no more jobs -> executor drains and
    // exits -> last response sender drops -> writer flushes and exits.
    drop(job_tx);
    if executor.join().is_err() {
        registry.counter("server.connection.panics").inc();
    }
    drop(resp_tx);
    if let Some(handle) = writer {
        if handle.join().is_err() {
            registry.counter("server.connection.panics").inc();
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    shared.unregister(conn_id);
}

/// Deframe and decode requests until EOF, stop, or a fatal violation.
/// Structural decode failures on a well-framed payload are answered with
/// a typed error frame and the connection keeps serving.
fn read_loop(
    shared: &Shared,
    stream: &TcpStream,
    config: &ServerConfig,
    job_tx: &std::sync::mpsc::SyncSender<RequestEnvelope>,
    resp_tx: &std::sync::mpsc::SyncSender<Vec<u8>>,
) -> ReadEnd {
    let registry = ada_telemetry::global();
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return ReadEnd::Fatal(ProtoError::Io("set_read_timeout failed".to_string()));
    }
    loop {
        let payload = match read_frame_timed(stream, config, &shared.stop) {
            TimedRead::Frame(payload) => payload,
            TimedRead::Eof => return ReadEnd::Eof,
            TimedRead::Stopping => return ReadEnd::Stopping,
            TimedRead::Failed(e) => return ReadEnd::Fatal(e),
        };
        registry
            .counter("server.bytes.read")
            .add(payload.len() as u64 + HEADER_LEN as u64);
        match RequestEnvelope::decode(&payload) {
            Ok(env) => {
                if job_tx.send(env).is_err() {
                    // Executor died (its panic already became a counter);
                    // nothing can be served anymore.
                    return ReadEnd::Fatal(ProtoError::Io("executor is gone".to_string()));
                }
            }
            Err(e) => {
                // The frame passed CRC, so the stream is still aligned:
                // answer with a typed error and keep the connection.
                registry.counter("server.protocol.errors").inc();
                let resp = ResponseEnvelope {
                    id: peek_request_id(&payload),
                    body: ResponseBody::Error(AdaError::from(e)),
                };
                if resp_tx.send(resp.encode()).is_err() {
                    return ReadEnd::Fatal(ProtoError::Io("writer is gone".to_string()));
                }
            }
        }
    }
}

/// Best-effort extraction of the request id from a payload that failed
/// structural decoding, so the error frame can still be correlated.
fn peek_request_id(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&payload[..8]);
        u64::from_le_bytes(b)
    } else {
        0
    }
}

enum TimedRead {
    Frame(Vec<u8>),
    Eof,
    Stopping,
    Failed(ProtoError),
}

/// Read one frame under the connection's deadlines. The socket has a
/// short `SO_RCVTIMEO`; every timeout tick re-checks the stop flag, the
/// idle deadline (no frame started), and the frame deadline (a frame
/// started arriving but has not completed — the slow-loris case).
fn read_frame_timed(mut stream: &TcpStream, config: &ServerConfig, stop: &AtomicBool) -> TimedRead {
    let idle_deadline = Instant::now() + config.idle_timeout;
    let mut frame_deadline: Option<Instant> = None;

    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    TimedRead::Eof
                } else {
                    TimedRead::Failed(ProtoError::Truncated {
                        needed: HEADER_LEN,
                        got: filled,
                    })
                };
            }
            Ok(n) => {
                filled += n;
                frame_deadline.get_or_insert_with(|| Instant::now() + config.frame_timeout);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return TimedRead::Stopping;
                }
                match frame_deadline {
                    Some(d) if Instant::now() >= d => {
                        return TimedRead::Failed(ProtoError::Io(format!(
                            "frame incomplete after {:?} (slow peer)",
                            config.frame_timeout
                        )));
                    }
                    None if Instant::now() >= idle_deadline => {
                        return TimedRead::Failed(ProtoError::Io(format!(
                            "idle for {:?}",
                            config.idle_timeout
                        )));
                    }
                    _ => {}
                }
            }
            Err(e) => return TimedRead::Failed(ProtoError::Io(e.to_string())),
        }
    }

    let h = match parse_header(&header, config.max_frame_len) {
        Ok(h) => h,
        Err(e) => return TimedRead::Failed(e),
    };
    let mut payload = vec![0u8; h.len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => {
                return TimedRead::Failed(ProtoError::Truncated {
                    needed: payload.len(),
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return TimedRead::Stopping;
                }
                if let Some(d) = frame_deadline {
                    if Instant::now() >= d {
                        return TimedRead::Failed(ProtoError::Io(format!(
                            "frame incomplete after {:?} (slow peer)",
                            config.frame_timeout
                        )));
                    }
                }
            }
            Err(e) => return TimedRead::Failed(ProtoError::Io(e.to_string())),
        }
    }
    match verify_payload(&h, &payload) {
        Ok(()) => TimedRead::Frame(payload),
        Err(e) => TimedRead::Failed(e),
    }
}

/// Drive one decoded request through the frontend under a trace root
/// minted from the wire-carried trace id, and build the response.
fn execute_request(frontend: &Frontend, env: RequestEnvelope) -> ResponseEnvelope {
    let registry = ada_telemetry::global();
    registry.counter("server.requests").inc();
    let started = Instant::now();
    let (ctx, mut root) = trace::root_remote("server.request", env.trace_id);
    root.arg("op", env.body.op_name());
    root.arg("client", env.client.as_str());
    let deadline = (env.deadline_ns != 0).then(|| Duration::from_nanos(env.deadline_ns));
    let id = env.id;
    let client = env.client;

    let outcome: Result<ResponseBody, AdaError> = match env.body {
        RequestBody::Ping => Ok(ResponseBody::Pong),
        RequestBody::CacheStats => Ok(ResponseBody::CacheStats(
            frontend.ada().cache_stats().into(),
        )),
        RequestBody::Ingest {
            dataset,
            pdb_text,
            xtc_bytes,
            batch_frames,
        } => {
            let request = if batch_frames == 0 {
                Request::Ingest {
                    dataset,
                    input: IngestInput::Real {
                        pdb_text,
                        xtc_bytes,
                    },
                }
            } else {
                Request::IngestStreaming {
                    dataset,
                    pdb_text,
                    xtc_bytes,
                    batch_frames: batch_frames as usize,
                }
            };
            frontend
                .submit_rooted(&client, request, deadline, &ctx, &mut root)
                .and_then(reply_to_ingest)
        }
        RequestBody::Query { dataset, tag } => {
            let request = Request::Query {
                dataset,
                tag: tag.map(Tag::new),
            };
            frontend
                .submit_rooted(&client, request, deadline, &ctx, &mut root)
                .and_then(reply_to_query)
        }
        RequestBody::QueryRange {
            dataset,
            tag,
            start,
            end,
            stride,
        } => {
            let request = Request::QueryRange {
                dataset,
                tag: Tag::new(tag),
                start: start as usize,
                end: end as usize,
                stride: stride as usize,
            };
            frontend
                .submit_rooted(&client, request, deadline, &ctx, &mut root)
                .and_then(reply_to_query)
        }
    };

    registry
        .histogram("server.request.ns")
        .record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    match outcome {
        Ok(body) => ResponseEnvelope { id, body },
        Err(e) => {
            registry.counter("server.request.errors").inc();
            ResponseEnvelope {
                id,
                body: ResponseBody::Error(e),
            }
        }
    }
}

fn reply_to_ingest(reply: Reply) -> Result<ResponseBody, AdaError> {
    match reply.into_ingest() {
        Some(rep) => Ok(ResponseBody::Ingest(WireIngestReport::from_report(&rep))),
        None => Err(AdaError::Internal(
            "ingest request got a query reply".to_string(),
        )),
    }
}

fn reply_to_query(reply: Reply) -> Result<ResponseBody, AdaError> {
    match reply.into_query() {
        Some(rep) => WireQueryReport::from_report(&rep).map(ResponseBody::Query),
        None => Err(AdaError::Internal(
            "query request got an ingest reply".to_string(),
        )),
    }
}
