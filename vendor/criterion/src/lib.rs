//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! A wall-clock micro-benchmark harness with criterion's API shape:
//! groups, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//! It warms up, runs timed samples, and prints mean time per iteration
//! (plus derived throughput) — no statistics engine, no HTML reports,
//! no comparison to saved baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier: stops the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name, parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean seconds per iteration, filled in by `iter`.
    mean_secs: f64,
}

impl Bencher {
    /// Time `routine`, storing the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so sample_size samples fill the measurement window.
        let budget = self.measurement.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += t0.elapsed();
            total_iters += iters_per_sample;
        }
        self.mean_secs = total.as_secs_f64() / total_iters.max(1) as f64;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{:.3} s", secs)
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{}/s", per_sec / 1e9, unit)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{}/s", per_sec / 1e6, unit)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{}/s", per_sec / 1e3, unit)
    } else {
        format!("{:.1} {}/s", per_sec, unit)
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total sampling duration target.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Throughput reported alongside mean time for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            mean_secs: 0.0,
        };
        f(&mut b);
        let mut line = format!("{}/{}: {}", self.name, id, fmt_time(b.mean_secs));
        if b.mean_secs > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!("  ({})", fmt_rate(n as f64 / b.mean_secs, "elem")));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!("  ({})", fmt_rate(n as f64 / b.mean_secs, "B")));
                }
                None => {}
            }
        }
        println!("{}", line);
        self.parent
            .results
            .push((format!("{}/{}", self.name, id), b.mean_secs));
    }

    /// Benchmark a closure under `name`.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        self.run(name.to_string(), f);
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, N: std::fmt::Display, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        name: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(name.to_string(), |b| f(b, input));
        self
    }

    /// End the group (no-op beyond criterion API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(full name, mean seconds per iteration)` for every finished bench.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("-- group {} --", name);
        BenchmarkGroup {
            name,
            parent: self,
            throughput: None,
            sample_size: 10,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function("bench", f);
        g.finish();
        self
    }
}

/// Collect benchmark functions into a runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_mean() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2);
            g.warm_up_time(Duration::from_millis(5));
            g.measurement_time(Duration::from_millis(10));
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, s)| *s > 0.0));
        assert_eq!(c.results[0].0, "t/spin");
        assert_eq!(c.results[1].0, "t/with_input/7");
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
