//! Offline stand-in for the `rand_distr` crate (see `vendor/README.md`).
//!
//! Provides the [`Normal`] distribution (Box–Muller) used by the workload
//! motion model, generic over `f32`/`f64` like the real crate so that
//! `Normal::new(0.0f32, 1.0f32)` infers its float type.

use rand::Rng;

/// Types that produce samples of `T` given a generator.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Float types [`Normal`] is generic over.
pub trait Float: Copy {
    /// Widen to `f64` (sampling math runs in `f64`).
    fn to_f64(self) -> f64;
    /// Narrow from `f64`.
    fn from_f64(v: f64) -> Self;
}

impl Float for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}

impl Float for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> f64 {
        v
    }
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Construct; fails on non-finite or negative standard deviation.
    pub fn new(mean: F, std_dev: F) -> Result<Normal<F>, NormalError> {
        let (m, s) = (mean.to_f64(), std_dev.to_f64());
        if !m.is_finite() || !s.is_finite() || s < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: two uniforms to one gaussian (the sibling draw is
        // discarded — throughput is irrelevant for workload synthesis).
        let u1 = rng.gen_f64().max(f64::MIN_POSITIVE);
        let u2 = rng.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close() {
        let normal = Normal::new(2.0f32, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {}", mean);
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn f64_infers_too() {
        let normal = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let _: f64 = normal.sample(&mut rng);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }
}
