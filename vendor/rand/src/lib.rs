//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the small API surface this repository uses: a seedable
//! deterministic generator ([`rngs::StdRng`], splitmix64-based) plus
//! [`Rng::gen_range`] over the primitive ranges the workload builders
//! sample from. Statistical quality is more than adequate for synthetic
//! trajectory generation; this is not a cryptographic generator.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a `Range`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($t:ty, $bits:expr, $denom:expr) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / $denom;
                range.start + unit * (range.end - range.start)
            }
        }
    };
}
impl_sample_float!(f32, 24, (1u32 << 24) as f32);
impl_sample_float!(f64, 53, (1u64 << 53) as f64);

macro_rules! impl_sample_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + (rng.next_u64() % span) as $t
            }
        }
    };
}
impl_sample_int!(usize);
impl_sample_int!(u64);
impl_sample_int!(u32);
impl_sample_int!(u16);
impl_sample_int!(u8);

macro_rules! impl_sample_signed {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    };
}
impl_sample_signed!(i64);
impl_sample_signed!(i32);
impl_sample_signed!(i16);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64. Passes through
    /// every seed to an independent, well-mixed stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut rng = StdRng { state: seed };
            // One warmup step decorrelates small adjacent seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f32> = (0..8).map(|_| a.gen_range(0.0..1.0f32)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.gen_range(0.0..1.0f32)).collect();
        let vc: Vec<f32> = (0..8).map(|_| c.gen_range(0.0..1.0f32)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let s = rng.gen_range(-4i32..-1);
            assert!((-4..-1).contains(&s));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {}", mean);
    }
}
