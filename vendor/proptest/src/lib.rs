//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this repository's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_filter`,
//! numeric-range and tuple strategies, `prop::collection::vec`,
//! `prop::array::uniform3`, `prop::sample::select`, [`any`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully deterministic, no `PROPTEST_CASES` env handling)
//! and failing inputs are **not shrunk** — the failing value is printed
//! as-is. That trade keeps the vendored crate small while preserving the
//! bug-finding power of the random sweep.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (what `prop_assert!` returns).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-test RNG (seeded from the test name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` directly yields a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generate vectors of values from this strategy (method alias used by
    /// some call styles; the free function is `prop::collection::vec`).
    fn prop_vec(self, len: Range<usize>) -> collection::VecStrategy<Self>
    where
        Self: Sized,
    {
        collection::vec(self, len)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i16, i32, i64, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full domain.
                    rng.gen_range(<$t>::MIN..<$t>::MAX)
                }
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical "whole domain" strategy (the [`any`] function).
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for primitives.
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for AnyPrimitive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6..1.0e6f32)
    }
}

impl Arbitrary for f32 {
    type Strategy = AnyPrimitive<f32>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The whole-domain strategy of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    pub use super::array;
    pub use super::collection;
    pub use super::sample;
}

/// `prop::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Vectors with strategy-generated elements and a random length.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector strategy over `element` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::array`.
pub mod array {
    use super::{Strategy, TestRng};

    /// `[T; 3]` with each element from the same strategy.
    pub struct Uniform3<S>(S);

    /// Three independent draws from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// `prop::sample`.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Everything a property test module imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert inside a property (returns `Err` instead of panicking so the
/// runner can report the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r, file!(), line!()
            )));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Bind one property parameter, then recurse into the rest of the list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($rng:ident; () ; $body:block) => {{
        #[allow(unused_mut)]
        let mut run = || -> ::std::result::Result<(), $crate::TestCaseError> {
            $body
            ::std::result::Result::Ok(())
        };
        run()
    }};
    ($rng:ident; (mut $name:ident : $ty:ty $(, $($rest:tt)*)?) ; $body:block) => {{
        #[allow(unused_mut)]
        let mut $name: $ty =
            $crate::Strategy::generate(&<$ty as $crate::Arbitrary>::arbitrary(), &mut $rng);
        $crate::__proptest_body!($rng; ($($($rest)*)?) ; $body)
    }};
    ($rng:ident; ($name:ident : $ty:ty $(, $($rest:tt)*)?) ; $body:block) => {{
        let $name: $ty =
            $crate::Strategy::generate(&<$ty as $crate::Arbitrary>::arbitrary(), &mut $rng);
        $crate::__proptest_body!($rng; ($($($rest)*)?) ; $body)
    }};
    ($rng:ident; (mut $name:ident in $strat:expr $(, $($rest:tt)*)?) ; $body:block) => {{
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_body!($rng; ($($($rest)*)?) ; $body)
    }};
    ($rng:ident; ($name:ident in $strat:expr $(, $($rest:tt)*)?) ; $body:block) => {{
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_body!($rng; ($($($rest)*)?) ; $body)
    }};
}

/// Expand the test functions of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; ) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(file!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    $crate::__proptest_body!(__rng; ($($params)*) ; $body);
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest '{}' case {}/{} failed: {}", stringify!($name), __case + 1, cfg.cases, e);
                }
            }
        }
        $crate::__proptest_fns!{$cfg; $($rest)*}
    };
}

/// The property-test macro: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{$cfg; $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{$crate::ProptestConfig::default(); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = prop::collection::vec(0u32..100, 1..10);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = crate::test_rng("fm");
        let s = (0usize..100)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |&x| x > 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v > 0 && v % 2 == 0 && v < 200);
        }
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = crate::test_rng("ir");
        let s = 1u32..=3;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && !seen[0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_params(x in 0usize..50, mut v in prop::collection::vec(any::<u8>(), 0..8)) {
            v.push(0);
            prop_assert!(x < 50);
            prop_assert_eq!(v.last().copied(), Some(0));
        }

        #[test]
        fn tuple_and_array_strategies(t in (0u32..4, prop::array::uniform3(-1.0f32..1.0)),
                                      pick in prop::sample::select(vec![7u8, 9])) {
            prop_assert!(t.0 < 4);
            prop_assert!(t.1.iter().all(|c| (-1.0..1.0).contains(c)));
            prop_assert!(pick == 7 || pick == 9);
        }
    }
}
