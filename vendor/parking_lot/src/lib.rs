//! Offline stand-in for the `parking_lot` crate.
//!
//! The container image this repository builds in has no crates.io access,
//! so the handful of external dependencies are vendored as minimal
//! API-compatible shims (see `vendor/README.md`). This one wraps
//! `std::sync::Mutex`/`RwLock` with parking_lot's no-poisoning `lock()`
//! signatures.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock. Unlike `std`, a poisoned lock is simply re-entered
    /// (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
