//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The API mirrors
//! crossbeam's: spawned closures receive a `&Scope` so they can spawn
//! siblings, and `scope` returns a `Result` (a child panic aborts the
//! scope with `Err` in crossbeam; here the panic propagates out of
//! `std::thread::scope` and is caught at the boundary).

pub mod thread {
    use std::any::Any;

    /// A scope handle; spawned threads may borrow from the enclosing stack
    /// frame and are all joined before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself (crossbeam's signature) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope: every thread spawned within is joined before this
    /// function returns. A panicking child propagates as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // AssertUnwindSafe is sound here: std::thread::scope joins every
        // child before unwinding continues, so no partially-updated state
        // outlives the call.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let mut results = vec![0u64; data.len()];
        super::thread::scope(|scope| {
            for (d, slot) in data.iter().zip(results.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = d * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn join_returns_value() {
        let v = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 42);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
