//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! [`Bytes`] is an immutable, reference-counted byte buffer. Cloning is
//! O(1) (a refcount bump) and [`Bytes::slice`] returns a zero-copy view —
//! the two properties ADA's zero-copy dispatch path relies on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-view. Panics when the range is out of bounds,
    /// mirroring `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {}..{} out of bounds (len {})",
            lo,
            hi,
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        match Arc::try_unwrap(b.data) {
            Ok(mut v) if b.start == 0 => {
                v.truncate(b.end);
                v
            }
            Ok(v) => v[b.start..b.end].to_vec(),
            Err(shared) => shared[b.start..b.end].to_vec(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        // Slices share the allocation.
        let s2 = s.slice(..2);
        assert_eq!(s2.as_ref(), &[2, 3]);
        assert_eq!(Vec::from(s2), vec![2, 3]);
    }

    #[test]
    fn clone_is_shallow() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.data, &c.data));
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..9);
    }
}
