//! Dual-mode consistency: the synthetic (size-only) data plane must agree
//! with the real (byte-materializing) one on everything the figures
//! depend on — per-tag volume shares, placement, and the relative timing
//! structure.

use ada_core::{Ada, AdaConfig, IngestInput, SyntheticDataset};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use std::collections::BTreeMap;
use std::sync::Arc;

fn fresh_ada() -> Ada {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd)
}

#[test]
fn synthetic_volumes_match_real_ingest() {
    // Build a real workload, ingest it; then ingest a synthetic spec with
    // the same shape and compare tag volumes.
    let w = ada_workload::gpcr_workload(4000, 4, 11);
    let real_ada = fresh_ada();
    let real_report = real_ada
        .ingest(
            "real",
            IngestInput::Real {
                pdb_text: write_pdb(&w.system),
                xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
            },
        )
        .unwrap();

    let natoms = w.system.len() as u64;
    let prot_atoms = w
        .system
        .category_ranges(ada_mdmodel::Category::Protein)
        .count() as u64;
    let mut atoms_by_tag = BTreeMap::new();
    atoms_by_tag.insert(Tag::protein(), prot_atoms);
    atoms_by_tag.insert(Tag::misc(), natoms - prot_atoms);
    let spec = SyntheticDataset {
        frames: 4,
        natoms,
        compressed_bytes: 0, // unused on this path
        atoms_by_tag,
    };
    let synth_ada = fresh_ada();
    let synth_report = synth_ada
        .ingest("synth", IngestInput::Synthetic(spec))
        .unwrap();

    for tag in [Tag::protein(), Tag::misc()] {
        let real = real_report.bytes_by_tag[&tag] as f64;
        let synth = synth_report.bytes_by_tag[&tag] as f64;
        // Real droppings carry small XTCF headers; volumes agree to <1%.
        let rel = (real - synth).abs() / synth;
        assert!(rel < 0.01, "tag {} real {} vs synth {}", tag, real, synth);
    }
    // Raw volume agrees exactly (12 bytes/atom/frame both ways... plus
    // per-frame header metadata on the real side).
    let rel = (real_report.raw_bytes as f64 - synth_report.raw_bytes as f64).abs()
        / synth_report.raw_bytes as f64;
    assert!(
        rel < 0.01,
        "raw {} vs {}",
        real_report.raw_bytes,
        synth_report.raw_bytes
    );
}

#[test]
fn placement_identical_across_modes() {
    let w = ada_workload::gpcr_workload(2500, 2, 5);
    let real_ada = fresh_ada();
    real_ada
        .ingest(
            "real",
            IngestInput::Real {
                pdb_text: write_pdb(&w.system),
                xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
            },
        )
        .unwrap();
    let synth_ada = fresh_ada();
    synth_ada
        .ingest(
            "synth",
            IngestInput::Synthetic(SyntheticDataset::gpcr_paper(2)),
        )
        .unwrap();

    // Both modes put protein on the SSD backend and MISC on the HDD.
    for (ada, name) in [(&real_ada, "real"), (&synth_ada, "synth")] {
        let by_backend = ada.containers().bytes_by_backend(name).unwrap();
        assert!(by_backend.contains_key("ssd"), "{} missing ssd", name);
        assert!(by_backend.contains_key("hdd"), "{} missing hdd", name);
        assert!(
            by_backend["hdd"] > by_backend["ssd"],
            "{} MISC should dominate",
            name
        );
    }
}

#[test]
fn synthetic_query_durations_scale_with_volume() {
    let ada = fresh_ada();
    ada.ingest(
        "a",
        IngestInput::Synthetic(SyntheticDataset::gpcr_paper(1000)),
    )
    .unwrap();
    ada.ingest(
        "b",
        IngestInput::Synthetic(SyntheticDataset::gpcr_paper(4000)),
    )
    .unwrap();
    let qa = ada.query("a", Some(&Tag::protein())).unwrap();
    let qb = ada.query("b", Some(&Tag::protein())).unwrap();
    let ratio = qb.read.as_secs_f64() / qa.read.as_secs_f64();
    // 4x the frames → ~4x the read time (modulo fixed latencies).
    assert!(ratio > 3.0 && ratio < 5.0, "ratio {}", ratio);
    assert_eq!(qb.data.bytes(), 4 * qa.data.bytes());
}

#[test]
fn synthetic_ingest_decompression_dominates() {
    // Even at ingest, the decompress stage dwarfs categorize+split —
    // consistent with Fig. 8's profile now running on the storage node.
    let ada = fresh_ada();
    let report = ada
        .ingest(
            "x",
            IngestInput::Synthetic(SyntheticDataset::gpcr_paper(5006)),
        )
        .unwrap();
    assert!(
        report.decompress.as_secs_f64() > 5.0 * (report.categorize + report.split).as_secs_f64()
    );
}
