//! Failure injection across the stack: corrupted droppings, clobbered
//! indexes and label files, capacity exhaustion mid-ingest, and queries
//! racing deletions. The middleware must fail with typed errors — never
//! panic, never return silently wrong data.

use ada_core::{Ada, AdaConfig, AdaError, IngestInput};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{Content, FsParams, LocalFs, SimFileSystem};
use ada_storagesim::{Device, DeviceProfile};
use std::sync::Arc;

struct Rig {
    ada: Ada,
    ssd: Arc<dyn SimFileSystem>,
    #[allow(dead_code)]
    hdd: Arc<dyn SimFileSystem>,
}

fn rig() -> Rig {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd.clone()),
    ]));
    Rig {
        ada: Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd.clone()),
        ssd,
        hdd,
    }
}

fn ingest_demo(ada: &Ada, name: &str) {
    let w = ada_workload::gpcr_workload(900, 2, 55);
    ada.ingest(
        name,
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();
}

#[test]
fn corrupt_dropping_bytes_yield_typed_error() {
    let r = rig();
    ingest_demo(&r.ada, "bar");
    // Clobber the protein dropping in place: delete + recreate with junk
    // of the same length.
    let paths = r.ssd.list("ssd/bar/hostdir.0/");
    let dropping = paths
        .iter()
        .find(|p| p.contains("dropping.data.p"))
        .expect("protein dropping exists")
        .clone();
    let len = r.ssd.stat(&dropping).unwrap().len;
    r.ssd.delete(&dropping).unwrap();
    r.ssd
        .create(&dropping, Content::real(vec![0xAAu8; len as usize]))
        .unwrap();

    let err = r.ada.query("bar", Some(&Tag::protein())).unwrap_err();
    assert!(matches!(err, AdaError::Xtcf { .. }), "got {:?}", err);
    assert_eq!(err.kind(), "xtcf");
    // The error names the corrupt dropping and chains the format error.
    assert!(err.to_string().contains("dropping.data.p"), "got {}", err);
    assert!(std::error::Error::source(&err).is_some());
    // The MISC subset is unaffected.
    assert!(r.ada.query("bar", Some(&Tag::misc())).is_ok());
}

#[test]
fn deleted_dropping_yields_fs_error() {
    let r = rig();
    ingest_demo(&r.ada, "bar");
    let paths = r.ssd.list("ssd/bar/hostdir.0/");
    let dropping = paths
        .iter()
        .find(|p| p.contains("dropping.data.p"))
        .unwrap()
        .clone();
    r.ssd.delete(&dropping).unwrap();
    let err = r.ada.query("bar", Some(&Tag::protein())).unwrap_err();
    assert!(matches!(err, AdaError::Plfs(_)), "got {:?}", err);
}

#[test]
fn corrupt_persisted_index_detected_on_reload() {
    let r = rig();
    ingest_demo(&r.ada, "bar");
    let index_path = "ssd/bar/hostdir.0/index";
    assert!(r.ssd.exists(index_path));
    r.ssd.delete(index_path).unwrap();
    r.ssd
        .create(index_path, Content::real(b"{not json".to_vec()))
        .unwrap();
    let err = r.ada.containers().load_index("bar").unwrap_err();
    assert!(matches!(err, ada_plfs::PlfsError::CorruptIndex(_)));
}

#[test]
fn truncated_xtc_at_ingest_is_rejected_cleanly() {
    let r = rig();
    let w = ada_workload::gpcr_workload(900, 2, 56);
    let xtc = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let result = r.ada.ingest(
        "bad",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: xtc[..xtc.len() / 2].to_vec(),
        },
    );
    assert!(matches!(result, Err(AdaError::Xtc(_))));
    // The failed dataset is not queryable.
    assert!(matches!(
        r.ada.query("bad", None),
        Err(AdaError::UnknownDataset(_))
    ));
}

#[test]
fn pdb_xtc_atom_mismatch_rejected() {
    let r = rig();
    let w1 = ada_workload::gpcr_workload(900, 1, 57);
    let w2 = ada_workload::gpcr_workload(400, 1, 58);
    let result = r.ada.ingest(
        "bad",
        IngestInput::Real {
            pdb_text: write_pdb(&w1.system),
            xtc_bytes: write_xtc(&w2.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    );
    assert!(matches!(result, Err(AdaError::AtomMismatch { .. })));
}

#[test]
fn backend_out_of_space_mid_ingest() {
    // A comically small SSD backend: ingest fails with a storage error
    // instead of corrupting state.
    let tiny_profile = DeviceProfile {
        capacity: 50_000, // 50 kB
        ..DeviceProfile::nvme_ssd_256gb()
    };
    let tiny: Arc<dyn SimFileSystem> = Arc::new(LocalFs::new(
        "tiny-ssd",
        FsParams::ext4(),
        ada_simfs::local::Backing::Single(Device::new(tiny_profile)),
    ));
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), tiny.clone()),
        ("hdd".into(), hdd),
    ]));
    let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, tiny);
    let w = ada_workload::gpcr_workload(5000, 3, 59);
    let result = ada.ingest(
        "big",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    );
    match result {
        Err(AdaError::Plfs(ada_plfs::PlfsError::Fs(ada_simfs::FsError::NoSpace { .. })))
        | Err(AdaError::Fs(ada_simfs::FsError::NoSpace { .. })) => {}
        other => panic!("expected NoSpace, got {:?}", other.map(|r| r.dataset)),
    }
}

#[test]
fn queries_against_wrong_tags_and_names_never_panic() {
    let r = rig();
    ingest_demo(&r.ada, "bar");
    for tag in ["", "P", "pp", "protein", "\0", "🧬"] {
        let res = r.ada.query("bar", Some(&Tag::new(tag)));
        assert!(matches!(res, Err(AdaError::UnknownTag(_))), "tag {:?}", tag);
    }
    for name in ["", "BAR", "bar ", "../bar"] {
        assert!(matches!(
            r.ada.query(name, None),
            Err(AdaError::UnknownDataset(_))
        ));
    }
}
