//! The paper's headline claims, asserted against the reproduction.
//!
//! Abstract: "compared to a traditional file system an ADA-assisted file
//! system improves data processing turnaround time by up to 13.4x and
//! reduces up to 2.5x memory usage for data rendering. Besides, ADA allows
//! the 1TB memory server to render more than 2x VMD graphs while saving 3x
//! energy consumption."

use ada_platforms::figures::{fig10, fig10_frames, fig7, fig8, fig9};
use ada_platforms::{run_scenario, Platform, Scenario};

#[test]
fn claim_turnaround_up_to_13_4x() {
    let [_, fig7b, _] = fig7();
    let mut best = 0.0f64;
    for row in fig7b.series[0].1.iter() {
        let c = fig7b.value("C-ext4", row.frames).unwrap();
        let p = fig7b.value("D-ADA (protein)", row.frames).unwrap();
        best = best.max(c / p);
    }
    assert!(
        best > 12.0 && best < 15.0,
        "best turnaround speedup {} (paper: up to 13.4x)",
        best
    );
}

#[test]
fn claim_memory_reduction_about_2_5x() {
    let [_, _, fig7c] = fig7();
    let ext4 = fig7c.value("C-ext4", 5006).unwrap();
    let ada = fig7c.value("D-ADA (protein)", 5006).unwrap();
    let ratio = ext4 / ada;
    assert!(
        ratio > 2.0 && ratio < 2.6,
        "memory ratio {} (paper: >2.5x)",
        ratio
    );
}

#[test]
fn claim_2x_more_frames_on_fat_node() {
    // Last surviving frame count per scenario.
    let [_, _, fig10c, _] = fig10();
    let survive = |label: &str| -> u64 {
        fig10c
            .series
            .iter()
            .find(|(l, _)| l == label)
            .unwrap()
            .1
            .iter()
            .filter(|p| !p.killed)
            .map(|p| p.frames)
            .max()
            .unwrap()
    };
    let xfs_max = survive("XFS");
    let ada_max = survive("ADA (protein)");
    assert_eq!(xfs_max, 1_564_000);
    assert_eq!(ada_max, 4_379_200);
    assert!(
        ada_max as f64 / xfs_max as f64 > 2.0,
        "ADA renders {}x more frames",
        ada_max as f64 / xfs_max as f64
    );
}

#[test]
fn claim_3x_energy_saving() {
    let [.., fig10d] = fig10();
    // Compare at the largest frame count where XFS still completes.
    let xfs = fig10d.value("XFS", 1_564_000).unwrap();
    let prot = fig10d.value("ADA (protein)", 1_564_000).unwrap();
    assert!(
        xfs / prot > 3.0,
        "energy saving {}x (paper: >3x)",
        xfs / prot
    );
}

#[test]
fn claim_decompression_is_the_bottleneck() {
    // Fig. 8 + §4.1: "the performance bottleneck of VMD data processing
    // lies in the repetitive data pre-processing rather than a low data
    // transfer rate".
    let rows = fig8();
    let (_, phases) = &rows[0];
    let decompress = phases.iter().find(|(n, _, _)| n == "decompress").unwrap().2;
    assert!(decompress > 0.5);

    // Faster storage alone does not fix it: C-ext4's retrieval is a tiny
    // share of its turnaround at scale.
    let m = run_scenario(&Platform::ssd_server(), Scenario::CTraditional, 5006);
    let frac = m.retrieval.as_secs_f64() / m.turnaround().as_secs_f64();
    assert!(frac < 0.05, "retrieval share {}", frac);
}

#[test]
fn claim_retrieval_becomes_insignificant_at_scale() {
    // §4.3: at 1,564,000 frames the raw data retrieval time weighs less
    // than 10% of the turnaround.
    let m = run_scenario(&Platform::fatnode(), Scenario::CTraditional, 1_564_000);
    let frac = m.retrieval.as_secs_f64() / m.turnaround().as_secs_f64();
    assert!(frac < 0.10, "retrieval fraction {}", frac);
    // And the absolute turnaround is in the paper's "around 400 minutes"
    // regime (we land within ~1.5x).
    let minutes = m.turnaround().as_secs_f64() / 60.0;
    assert!(minutes > 250.0 && minutes < 650.0, "{} minutes", minutes);
}

#[test]
fn claim_cluster_curves_keep_paper_ordering() {
    let [fig9a, fig9b, fig9c] = fig9();
    for frames in [3129u64, 6256] {
        let c = fig9a.value("C-PVFS", frames).unwrap();
        let d = fig9a.value("D-PVFS", frames).unwrap();
        let all = fig9a.value("D-ADA (all)", frames).unwrap();
        let prot = fig9a.value("D-ADA (protein)", frames).unwrap();
        // Fig. 9a: ADA curves between best (C) and worst (D).
        assert!(
            c <= prot && prot <= all && all <= d,
            "retrieval ordering at {}",
            frames
        );
        // Fig. 9b: compressed turnaround worst by a wide margin.
        let ct = fig9b.value("C-PVFS", frames).unwrap();
        let pt = fig9b.value("D-ADA (protein)", frames).unwrap();
        assert!(ct / pt > 5.0, "C-PVFS vs ADA(protein) {}", ct / pt);
        // Fig. 9c has the same shape as 7c: ADA(protein) uses least memory.
        let mem_d = fig9c.value("D-PVFS", frames).unwrap();
        let mem_p = fig9c.value("D-ADA (protein)", frames).unwrap();
        assert!(mem_d / mem_p > 2.0);
    }
}

#[test]
fn fig10_all_scenarios_killed_points_stable() {
    // The kill boundary is a calibrated invariant; make sure the whole
    // series reports it consistently (no flapping across frame counts).
    let [_, fig10b, ..] = fig10();
    for (label, pts) in &fig10b.series {
        let mut seen_kill = false;
        for p in pts {
            if seen_kill {
                assert!(
                    p.killed,
                    "{} revived after a kill at {} frames",
                    label, p.frames
                );
            }
            seen_kill |= p.killed;
        }
    }
    assert_eq!(fig10_frames().len(), 13);
}
