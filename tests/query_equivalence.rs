//! The parallel query pipeline must be observably identical to the serial
//! reference retrieval (`query_threads = 0`): bit-equal trajectories for
//! full-frame and per-tag queries, identical simulated read costs, and the
//! same typed errors under injected faults — on single- and multi-dropping
//! datasets, real and synthetic.

use ada_core::{Ada, AdaConfig, AdaError, IngestInput, RetrievedData};
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdformats::xtcf::write_xtcf;
use ada_mdformats::{write_pdb, Frame, Trajectory};
use ada_mdmodel::{PbcBox, Tag};
use ada_plfs::ContainerSet;
use ada_simfs::{Content, LocalFs, SimFileSystem};
use proptest::prelude::*;
use std::sync::Arc;

struct Rig {
    ada: Ada,
    ssd: Arc<dyn SimFileSystem>,
}

/// Hybrid SSD/HDD ADA with explicit query parallelism knobs.
fn rig(query_threads: usize, frames_per_dropping: usize) -> Rig {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        query_threads,
        frames_per_dropping,
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    Rig {
        ada: Ada::new(config, containers, ssd.clone()),
        ssd,
    }
}

fn ingest_real(ada: &Ada, name: &str, natoms: usize, nframes: usize, seed: u64) {
    let w = ada_workload::gpcr_workload(natoms, nframes, seed);
    ada.ingest(
        name,
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();
}

fn query_real(ada: &Ada, dataset: &str, tag: Option<&Tag>) -> Trajectory {
    match ada.query(dataset, tag).unwrap().data {
        RetrievedData::Real(t) => t,
        _ => unreachable!("real ingest must yield real data"),
    }
}

/// Every query observable of `par` equals `ser`'s: bit-equal full-frame
/// and per-tag trajectories plus identical simulated indexer/read costs.
fn assert_queries_equivalent(ser: &Ada, par: &Ada, dataset: &str, what: &str) {
    let tags = ser.tags(dataset).unwrap();
    assert_eq!(tags, par.tags(dataset).unwrap(), "{}: tag set", what);
    for tag in tags.iter().map(Some).chain([None]) {
        let a = ser.query(dataset, tag).unwrap();
        let b = par.query(dataset, tag).unwrap();
        assert_eq!(
            a.indexer, b.indexer,
            "{}: indexer cost, tag {:?}",
            what, tag
        );
        assert_eq!(a.read, b.read, "{}: read cost, tag {:?}", what, tag);
        match (a.data, b.data) {
            (RetrievedData::Real(ta), RetrievedData::Real(tb)) => {
                // XTCF is lossless: delivered coordinates are bit-equal.
                assert_eq!(ta, tb, "{}: trajectory, tag {:?}", what, tag);
            }
            (
                RetrievedData::Synthetic {
                    bytes: ba,
                    frames: fa,
                    atoms_per_frame: aa,
                },
                RetrievedData::Synthetic {
                    bytes: bb,
                    frames: fb,
                    atoms_per_frame: ab,
                },
            ) => {
                assert_eq!(
                    (ba, fa, aa),
                    (bb, fb, ab),
                    "{}: synthetic, tag {:?}",
                    what,
                    tag
                );
            }
            _ => panic!("{}: serial and parallel modes disagree", what),
        }
    }
}

#[test]
fn parallel_matches_serial_on_multi_dropping_real_dataset() {
    // 7 frames / 2 per dropping = 4 droppings per tag, spread over both
    // backends — the pipeline has real fan-out to get wrong.
    let ser = rig(0, 2);
    ingest_real(&ser.ada, "d", 1600, 7, 11);
    for threads in [1, 2, 4, 8] {
        let par = rig(threads, 2);
        ingest_real(&par.ada, "d", 1600, 7, 11);
        assert_queries_equivalent(
            &ser.ada,
            &par.ada,
            "d",
            &format!("query_threads={}", threads),
        );
    }
}

#[test]
fn parallel_matches_serial_on_single_dropping_real_dataset() {
    let ser = rig(0, 512);
    ingest_real(&ser.ada, "d", 900, 3, 21);
    let par = rig(4, 512);
    ingest_real(&par.ada, "d", 900, 3, 21);
    assert_queries_equivalent(&ser.ada, &par.ada, "d", "single dropping");
}

#[test]
fn parallel_matches_serial_on_synthetic_dataset() {
    let spec = ada_core::SyntheticDataset::gpcr_paper(64);
    let ser = rig(0, 512);
    ser.ada
        .ingest("syn", IngestInput::Synthetic(spec.clone()))
        .unwrap();
    let par = rig(4, 512);
    par.ada.ingest("syn", IngestInput::Synthetic(spec)).unwrap();
    assert_queries_equivalent(&ser.ada, &par.ada, "syn", "synthetic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property sweep: any workload shape and thread count delivers the
    /// serial payload.
    #[test]
    fn parallel_query_is_serial_query(
        natoms in 200usize..1200,
        nframes in 1usize..9,
        frames_per_dropping in 1usize..4,
        threads in 1usize..6,
        seed in 0u64..1000,
    ) {
        let ser = rig(0, frames_per_dropping);
        ingest_real(&ser.ada, "d", natoms, nframes, seed);
        let par = rig(threads, frames_per_dropping);
        ingest_real(&par.ada, "d", natoms, nframes, seed);
        for tag in [Some(Tag::protein()), Some(Tag::misc()), None] {
            let a = query_real(&ser.ada, "d", tag.as_ref());
            let b = query_real(&par.ada, "d", tag.as_ref());
            prop_assert_eq!(a, b);
        }
    }
}

/// Clobber one protein dropping of `r` in place with junk bytes.
fn corrupt_protein_dropping(r: &Rig) -> String {
    let paths = r.ssd.list("ssd/d/hostdir.0/");
    let dropping = paths
        .iter()
        .find(|p| p.contains("dropping.data.p"))
        .expect("protein dropping exists")
        .clone();
    let len = r.ssd.stat(&dropping).unwrap().len;
    r.ssd.delete(&dropping).unwrap();
    r.ssd
        .create(&dropping, Content::real(vec![0x5Au8; len as usize]))
        .unwrap();
    dropping
}

#[test]
fn corrupt_dropping_yields_xtcf_error_on_both_paths() {
    for threads in [0, 4] {
        let r = rig(threads, 2);
        ingest_real(&r.ada, "d", 900, 5, 31);
        let dropping = corrupt_protein_dropping(&r);
        for tag in [Some(Tag::protein()), None] {
            let err = r.ada.query("d", tag.as_ref()).unwrap_err();
            assert!(
                matches!(err, AdaError::Xtcf { .. }),
                "threads={} tag={:?}: got {:?}",
                threads,
                tag,
                err
            );
            assert_eq!(err.kind(), "xtcf");
            assert!(err.to_string().contains(&dropping), "got {}", err);
            assert!(std::error::Error::source(&err).is_some());
        }
        // The MISC subset never touches the corrupt dropping.
        assert!(r.ada.query("d", Some(&Tag::misc())).is_ok());
    }
}

/// Rewrite one protein dropping with a prefix of its own bytes — a
/// mid-frame truncation, the classic partial-write corruption.
fn truncate_protein_dropping(r: &Rig, keep: usize) -> String {
    let paths = r.ssd.list("ssd/d/hostdir.0/");
    let dropping = paths
        .iter()
        .find(|p| p.contains("dropping.data.p"))
        .expect("protein dropping exists")
        .clone();
    let len = r.ssd.stat(&dropping).unwrap().len as usize;
    r.ssd.delete(&dropping).unwrap();
    r.ssd
        .create(&dropping, Content::real(vec![0x5Au8; keep.min(len)]))
        .unwrap();
    dropping
}

/// Satellite regression for the panic burn-down: malformed droppings of
/// several shapes (truncated mid-frame, zero-length) fed through the
/// parallel query pipeline must surface as structured `AdaError`s — never
/// as a worker panic — and must leave the `Ada` instance fully usable
/// (a panicking worker would poison the stage channels instead).
#[test]
fn malformed_dropping_in_parallel_query_is_a_structured_error_not_a_panic() {
    for (what, keep) in [("truncated", 40usize), ("zero-length", 0usize)] {
        for threads in [0, 1, 4, 8] {
            let r = rig(threads, 2);
            ingest_real(&r.ada, "d", 1200, 6, 61);
            truncate_protein_dropping(&r, keep);

            for tag in [Some(Tag::protein()), None] {
                // `unwrap_err` both asserts failure and proves no panic
                // escaped the pipeline (a panic would abort this test).
                let err = r.ada.query("d", tag.as_ref()).unwrap_err();
                assert!(
                    !err.kind().is_empty() && err.kind() != "internal",
                    "{} threads={} tag={:?}: want a decode/read error, got {:?} ({})",
                    what,
                    threads,
                    tag,
                    err,
                    err.kind()
                );
                assert!(!err.to_string().is_empty());
            }

            // The pipeline survived: untouched subsets still retrieve, so
            // no stage thread died holding a channel.
            assert!(
                r.ada.query("d", Some(&Tag::misc())).is_ok(),
                "{} threads={}: pipeline unusable after failed query",
                what,
                threads
            );
            // And the instance still ingests + queries fresh datasets.
            ingest_real(&r.ada, "d2", 600, 3, 62);
            assert!(r.ada.query("d2", None).is_ok());
        }
    }
}

#[test]
fn failed_queries_do_not_bump_access_counters() {
    for threads in [0, 4] {
        let r = rig(threads, 2);
        ingest_real(&r.ada, "d", 900, 4, 41);

        // Unknown tag: rejected before any retrieval.
        r.ada.query("d", Some(&Tag::new("zz"))).unwrap_err();
        assert!(
            r.ada.access_counts("d").is_empty(),
            "threads={}: unknown-tag query counted",
            threads
        );

        // Corrupt dropping: retrieval starts but fails — still no count.
        corrupt_protein_dropping(&r);
        r.ada.query("d", None).unwrap_err();
        r.ada.query("d", Some(&Tag::protein())).unwrap_err();
        assert!(
            r.ada.access_counts("d").is_empty(),
            "threads={}: failed query counted",
            threads
        );

        // A successful query is the first (and only) thing counted.
        r.ada.query("d", Some(&Tag::misc())).unwrap();
        let counts = r.ada.access_counts("d");
        assert_eq!(counts.get(&Tag::misc()), Some(&1));
        assert_eq!(counts.get(&Tag::protein()), None);
    }
}

#[test]
fn frame_count_mismatch_is_a_structured_error() {
    for threads in [0, 4] {
        let r = rig(threads, 512);
        ingest_real(&r.ada, "d", 900, 3, 51);

        // Splice in a foreign protein dropping: one extra well-formed
        // frame, so tag `p` now decodes 4 frames while the label (and tag
        // `m`) say 3. Before the mismatch check, full-frame reassembly
        // silently truncated to the shortest subset.
        let label = r.ada.label("d").unwrap();
        let p_atoms = label.ranges(&Tag::protein()).unwrap().count();
        let extra = Trajectory::from_frames(vec![Frame {
            step: 99,
            time: 9.9,
            pbc: PbcBox::zero(),
            coords: vec![[1.0, 2.0, 3.0]; p_atoms],
        }]);
        r.ada
            .containers()
            .append_tagged("d", "p", "ssd", Content::real(write_xtcf(&extra).unwrap()))
            .unwrap();

        let err = r.ada.query("d", None).unwrap_err();
        match &err {
            AdaError::FrameCountMismatch { tag, expected, got } => {
                assert_eq!(tag, "p", "threads={}", threads);
                assert_eq!(*expected, 3, "threads={}", threads);
                assert_eq!(*got, 4, "threads={}", threads);
            }
            other => panic!(
                "threads={}: expected FrameCountMismatch, got {:?}",
                threads, other
            ),
        }
        assert_eq!(err.kind(), "frame_count_mismatch");
        // The failed reassembly never counted as an access.
        assert!(r.ada.access_counts("d").is_empty());
        // Per-tag queries still deliver the subsets verbatim.
        assert_eq!(query_real(&r.ada, "d", Some(&Tag::protein())).len(), 4);
        assert_eq!(query_real(&r.ada, "d", Some(&Tag::misc())).len(), 3);
    }
}
