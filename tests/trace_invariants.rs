//! Satellite suite (ISSUE 7): trace-tree invariants under concurrent load.
//!
//! What must hold:
//! * every admitted request yields exactly one trace whose spans form a
//!   single connected, acyclic tree rooted at span 1 — even when the
//!   spans were recorded on reader/decoder worker threads;
//! * child spans nest within their parent's wall time;
//! * shed (`overloaded`), deadline-expired, and errored requests still
//!   produce a trace, flagged and retained by the flight recorder, with
//!   the shed/expired ones carrying queue-depth and retry/deadline args;
//! * turning tracing off changes no query bytes (observability is
//!   side-effect-free).
//!
//! The flight recorder is process-global, so these tests serialize on a
//! local mutex and only assert on traces they can attribute to
//! themselves (by op, flag, or a cleared recorder).

use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

use ada_core::{Ada, AdaConfig, AdaError, IngestInput, RetrievedData};
use ada_frontend::{Frontend, FrontendConfig, Request};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use ada_telemetry::trace::{self, ArgValue, Trace, TraceSpan};

static GUARD: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn make_ada() -> Arc<Ada> {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Arc::new(Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd))
}

fn real_input(natoms: usize, nframes: usize, seed: u64) -> IngestInput {
    let w = ada_workload::gpcr_workload(natoms, nframes, seed);
    IngestInput::Real {
        pdb_text: ada_mdformats::write_pdb(&w.system),
        xtc_bytes: ada_mdformats::xtc::write_xtc(
            &w.trajectory,
            ada_mdformats::xtc::DEFAULT_PRECISION,
        )
        .unwrap(),
    }
}

fn span_by_id(t: &Trace, id: u64) -> &TraceSpan {
    t.spans
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("trace {:x}: dangling span id {}", t.id, id))
}

fn arg<'a>(s: &'a TraceSpan, key: &str) -> Option<&'a ArgValue> {
    s.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

/// The structural invariants every sealed trace must satisfy.
fn assert_tree_invariants(t: &Trace) {
    assert!(!t.spans.is_empty(), "trace {:x} has no spans", t.id);

    // Exactly one root, and it is span 1.
    let roots: Vec<&TraceSpan> = t.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(
        roots.len(),
        1,
        "trace {:x}: expected exactly one root span, got {:?}",
        t.id,
        roots.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    assert_eq!(roots[0].id, 1, "root span must be id 1");
    assert_eq!(roots[0].name, t.op, "root span is named after the op");

    // Span ids are unique within the trace.
    let mut ids: Vec<u64> = t.spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    let n = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), n, "trace {:x}: duplicate span ids", t.id);

    // Every parent link resolves, and every walk terminates at the root
    // (acyclic: a cycle would exceed the span count in hops).
    for s in &t.spans {
        let mut cur = s;
        let mut hops = 0usize;
        while let Some(p) = cur.parent {
            cur = span_by_id(t, p);
            hops += 1;
            assert!(
                hops <= t.spans.len(),
                "trace {:x}: parent cycle through span {}",
                t.id,
                s.id
            );
        }
        assert_eq!(cur.id, 1, "trace {:x}: span {} not rooted", t.id, s.id);
    }

    // Children nest within their parent's wall time.
    for s in &t.spans {
        let Some(p) = s.parent else { continue };
        let parent = span_by_id(t, p);
        assert!(
            s.start_ns >= parent.start_ns && s.end_ns <= parent.end_ns,
            "trace {:x}: span {} ({}) [{},{}] escapes parent {} ({}) [{},{}]",
            t.id,
            s.id,
            s.name,
            s.start_ns,
            s.end_ns,
            parent.id,
            parent.name,
            parent.start_ns,
            parent.end_ns
        );
    }
}

/// Concurrent mixed traffic: one connected tree per admitted request,
/// crossing the frontend worker, backend reader, and decoder threads.
#[test]
fn concurrent_load_yields_one_connected_tree_per_request() {
    const CLIENTS: usize = 6;
    const QUERIES_PER_CLIENT: usize = 4;
    let _g = serialize();
    trace::set_tracing(true);
    trace::recorder().clear();

    let fe = Frontend::new(
        make_ada(),
        FrontendConfig {
            ingest_slots: 2,
            query_slots: 4,
            ingest_queue: 64,
            query_queue: 64,
            default_deadline: None,
            ..FrontendConfig::default()
        },
    );
    fe.ingest("setup", "shared", real_input(500, 4, 7)).unwrap();

    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let fe = &fe;
            let barrier = &barrier;
            scope.spawn(move || {
                let client = format!("c{}", t);
                barrier.wait();
                for i in 0..QUERIES_PER_CLIENT {
                    let tag = match i % 3 {
                        0 => Some(Tag::protein()),
                        1 => Some(Tag::misc()),
                        _ => None,
                    };
                    fe.query(&client, "shared", tag.as_ref()).unwrap();
                }
            });
        }
    });

    let traces = fe.flight_recorder().recent();
    let requests: Vec<&Arc<Trace>> = traces
        .iter()
        .filter(|t| t.op == "frontend.request")
        .collect();
    // Setup ingest + every client query minted exactly one root each.
    assert_eq!(
        requests.len(),
        1 + CLIENTS * QUERIES_PER_CLIENT,
        "one trace per admitted request"
    );

    let mut queue_waits = 0usize;
    for t in &requests {
        assert_tree_invariants(t);
        assert!(!t.is_flagged(), "all requests succeeded: {:?}", t.flag);
        // The admission root carries the op and client names.
        let root = t.root().unwrap();
        assert!(arg(root, "op").is_some() && arg(root, "client").is_some());
        // The scheduler's queue wait and the slot-held execute span are
        // both children of the root.
        queue_waits += t
            .spans
            .iter()
            .filter(|s| s.name == "frontend.queue_wait")
            .count();
        let exec = t
            .spans
            .iter()
            .find(|s| s.name == "frontend.execute")
            .expect("admitted request has an execute span");
        assert_eq!(exec.parent, Some(root.id));
        // The middleware facade span sits under execute, and the query
        // traces reach the per-dropping decode stage recorded on worker
        // threads.
        if matches!(arg(root, "op"), Some(ArgValue::Str(op)) if op == "query") {
            let facade = t
                .spans
                .iter()
                .find(|s| s.name == "ada.query")
                .expect("query trace reaches the facade");
            assert_eq!(facade.parent, Some(exec.id));
            assert!(
                t.spans.iter().any(|s| s.name == "query.read"),
                "query trace records backend reads"
            );
            assert!(
                t.spans.iter().any(|s| s.name == "query.reassemble"),
                "query trace records reassembly"
            );
            // Spans recorded off the worker that minted the root prove
            // the context crossed a thread boundary.
            let root_thread = &root.thread;
            assert!(
                t.spans.iter().any(|s| &s.thread != root_thread),
                "trace {:x} never left the admission thread",
                t.id
            );
        }
    }
    assert_eq!(
        queue_waits,
        1 + CLIENTS * QUERIES_PER_CLIENT,
        "every admitted request records exactly one queue wait"
    );

    // The registry snapshot embeds flight-recorder summaries.
    let snap = ada_telemetry::snapshot_with_traces();
    let recent = snap
        .field("traces")
        .and_then(|t| t.field("recent"))
        .and_then(|r| r.as_arr())
        .expect("snapshot embeds trace summaries");
    assert!(recent.len() >= requests.len());
}

/// An errored request (unknown dataset) still produces a full trace,
/// flagged with the error kind and retained by the flight recorder.
#[test]
fn errored_request_trace_is_flagged_and_retained() {
    let _g = serialize();
    trace::set_tracing(true);
    trace::recorder().clear();

    let fe = Frontend::new(make_ada(), FrontendConfig::default());
    let err = fe.query("c0", "no-such-dataset", None).unwrap_err();
    assert_eq!(err.kind(), "unknown_dataset");

    let retained = fe.flight_recorder().retained();
    let t = retained
        .iter()
        .find(|t| t.flag.as_deref() == Some("error:unknown_dataset"))
        .expect("errored trace retained");
    assert_tree_invariants(t);
    assert_eq!(t.root().unwrap().error.as_deref(), Some("unknown_dataset"));
    // The facade span that observed the failure carries the kind too.
    let facade = t.spans.iter().find(|s| s.name == "ada.query").unwrap();
    assert_eq!(facade.error.as_deref(), Some("unknown_dataset"));
}

/// A queued deadline miss produces a flagged trace whose queue-wait span
/// records how long it waited, the deadline, and the observed depth.
#[test]
fn expired_request_trace_records_wait_and_depth() {
    let _g = serialize();
    trace::set_tracing(true);
    trace::recorder().clear();

    let fe = Frontend::new(make_ada(), FrontendConfig::default());
    fe.ingest("setup", "d", real_input(300, 2, 3)).unwrap();
    // 1 ns is always in the past by the time a worker pops.
    let err = fe
        .submit(
            "c0",
            Request::Query {
                dataset: "d".into(),
                tag: None,
            },
            Some(Duration::from_nanos(1)),
        )
        .unwrap_err();
    assert!(matches!(err, AdaError::DeadlineExceeded { .. }));

    let retained = fe.flight_recorder().retained();
    let t = retained
        .iter()
        .find(|t| t.flag.as_deref() == Some("error:deadline_exceeded"))
        .expect("expired trace retained");
    assert_tree_invariants(t);
    let wait = t
        .spans
        .iter()
        .find(|s| s.name == "frontend.queue_wait")
        .expect("expired request still records its queue wait");
    for key in ["waited_ns", "deadline_ns", "queue_depth"] {
        assert!(
            arg(wait, key).is_some(),
            "queue_wait span missing arg {}",
            key
        );
    }
    assert!(
        !t.spans.iter().any(|s| s.name == "frontend.execute"),
        "an expired request never executes"
    );
}

/// Shed requests (typed `Overloaded`) leave flagged traces whose root
/// records the observed queue depth and the retry hint handed back to
/// the client. Contention needs overlapping clients, so the scenario is
/// retried like the tier-1 thundering-herd test.
#[test]
fn shed_request_trace_records_depth_and_retry_hint() {
    const CLIENTS: usize = 8;
    let _g = serialize();
    trace::set_tracing(true);
    for attempt in 0..5 {
        trace::recorder().clear();
        let fe = Frontend::new(
            make_ada(),
            FrontendConfig {
                ingest_slots: 1,
                query_slots: 1,
                ingest_queue: 1,
                query_queue: 1,
                default_deadline: None,
                ..FrontendConfig::default()
            },
        );
        fe.ingest("setup", "big", real_input(2500, 8, 11)).unwrap();

        let barrier = Barrier::new(CLIENTS);
        let mut shed = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..CLIENTS {
                let fe = &fe;
                let barrier = &barrier;
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    fe.query(&format!("c{}", t), "big", None)
                }));
            }
            for h in handles {
                if let Err(AdaError::Overloaded { .. }) =
                    h.join().expect("client thread must not panic")
                {
                    shed += 1;
                }
            }
        });
        if shed == 0 {
            eprintln!("attempt {}: herd fully serialized, retrying", attempt);
            continue;
        }

        let flagged: Vec<Arc<Trace>> = fe
            .flight_recorder()
            .retained()
            .into_iter()
            .filter(|t| t.flag.as_deref() == Some("error:overloaded"))
            .collect();
        assert_eq!(flagged.len() as u64, shed, "every shed request is retained");
        for t in &flagged {
            assert_tree_invariants(t);
            let root = t.root().unwrap();
            assert_eq!(root.error.as_deref(), Some("overloaded"));
            match arg(root, "queue_depth") {
                Some(ArgValue::U64(d)) => assert!(*d >= 1),
                other => panic!("missing queue_depth arg: {:?}", other),
            }
            match arg(root, "retry_after_ns") {
                Some(ArgValue::U64(ns)) => assert!(*ns > 0),
                other => panic!("missing retry_after_ns arg: {:?}", other),
            }
        }
        return;
    }
    panic!("8 clients through a 1-slot/1-deep queue never overlapped in 5 attempts");
}

/// Tracing must be side-effect-free: the same ingest+query sequence with
/// tracing on and off returns byte-identical data.
#[test]
fn tracing_toggle_leaves_query_bytes_identical() {
    let _g = serialize();

    let run = |tracing_on: bool| -> Vec<u8> {
        trace::set_tracing(tracing_on);
        let ada = make_ada();
        ada.ingest("d", real_input(600, 3, 42)).unwrap();
        let report = ada.query("d", Some(&Tag::protein())).unwrap();
        match report.data {
            RetrievedData::Real(traj) => {
                ada_mdformats::xtc::write_xtc(&traj, ada_mdformats::xtc::DEFAULT_PRECISION).unwrap()
            }
            other => panic!("expected real data, got {:?}", other),
        }
    };

    let with_tracing = run(true);
    let without_tracing = run(false);
    trace::set_tracing(true);
    assert_eq!(
        with_tracing, without_tracing,
        "tracing on/off changed query bytes"
    );
}
