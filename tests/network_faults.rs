//! Satellite suite (ISSUE 10): protocol fault injection.
//!
//! Every frame in the hostile corpus — truncated frame, flipped CRC
//! byte, bad magic, oversized declared length, mid-response connection
//! drop, slow-loris half-written header — must yield a *typed*
//! `AdaError` on the receiving side, never a hang or a panic, with
//! bounded memory (oversized declarations are rejected before
//! allocation), and both sides must stay usable for well-formed peers
//! afterwards. The corpus runs against the real server with 0, 1, 4,
//! and 8 well-behaved background client threads hammering it the whole
//! time.

use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ada_client::{Client, ClientConfig};
use ada_core::{Ada, AdaConfig};
use ada_frontend::{Frontend, FrontendConfig};
use ada_plfs::ContainerSet;
use ada_proto::{
    encode_frame, read_frame, RequestBody, RequestEnvelope, ResponseBody, ResponseEnvelope,
    DEFAULT_MAX_FRAME,
};
use ada_server::{Server, ServerConfig};
use ada_simfs::{LocalFs, SimFileSystem};

static GUARD: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn make_ada() -> Arc<Ada> {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Arc::new(Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd))
}

/// A server with short fault deadlines (so slow-loris eviction is fast)
/// and a 1 MiB frame limit (so the oversized case is cheap to assert).
fn start_fault_server() -> Server {
    let fe = Arc::new(Frontend::new(
        make_ada(),
        FrontendConfig {
            ingest_slots: 2,
            query_slots: 4,
            ingest_queue: 64,
            query_queue: 64,
            default_deadline: None,
            ..FrontendConfig::default()
        },
    ));
    Server::start(
        fe,
        ServerConfig {
            idle_timeout: Duration::from_secs(5),
            frame_timeout: Duration::from_millis(300),
            max_frame_len: 1 << 20,
            ..ServerConfig::default()
        },
    )
    .expect("server must start")
}

fn well_behaved_client(server: &Server, name: &str) -> Client {
    Client::new(
        server.local_addr().to_string(),
        ClientConfig {
            name: name.to_string(),
            io_timeout: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    )
}

/// Raw evil socket with a bounded read patience (a hung server would
/// otherwise hang the test — the timeout IS the no-hang assertion).
fn evil_socket(server: &Server) -> TcpStream {
    let s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn ping_payload() -> Vec<u8> {
    RequestEnvelope {
        id: 7,
        client: "evil".to_string(),
        trace_id: 0,
        deadline_ns: 0,
        body: RequestBody::Ping,
    }
    .encode()
}

/// Read one response envelope off an evil socket.
fn read_response(stream: &mut TcpStream) -> Option<ResponseEnvelope> {
    match read_frame(stream, DEFAULT_MAX_FRAME) {
        Ok(Some(payload)) => Some(ResponseEnvelope::decode(&payload).expect("valid response")),
        Ok(None) => None,
        Err(e) => panic!("reading the server's response failed: {:?}", e),
    }
}

fn assert_network_error(resp: Option<ResponseEnvelope>, what: &str) {
    match resp {
        Some(ResponseEnvelope {
            body: ResponseBody::Error(e),
            ..
        }) => assert_eq!(e.kind(), "network", "{}: wrong kind: {}", what, e),
        Some(other) => panic!("{}: expected an error frame, got {:?}", what, other.body),
        // The server may also have torn the connection down before the
        // best-effort error frame made it out; EOF is an acceptable
        // outcome for a protocol violation, a hang is not.
        None => {}
    }
}

/// The six-fault corpus against a live server. Each fault uses a fresh
/// evil connection; the final step proves the server still serves
/// well-formed peers.
fn run_fault_corpus(server: &Server) {
    // 1. Truncated frame: header declares 64 payload bytes, 10 arrive,
    //    then the write side closes.
    let mut s = evil_socket(server);
    let frame = encode_frame(&[0xab; 64]).unwrap();
    s.write_all(&frame[..frame.len() - 54]).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    assert_network_error(read_response(&mut s), "truncated frame");

    // 2. Flipped CRC byte.
    let mut s = evil_socket(server);
    let mut frame = encode_frame(&ping_payload()).unwrap();
    frame[9] ^= 0x01;
    s.write_all(&frame).unwrap();
    assert_network_error(read_response(&mut s), "flipped crc");

    // 3. Bad magic.
    let mut s = evil_socket(server);
    let mut frame = encode_frame(&ping_payload()).unwrap();
    frame[0] = b'X';
    s.write_all(&frame).unwrap();
    assert_network_error(read_response(&mut s), "bad magic");

    // 4. Oversized declared length: 4 GiB declared against a 1 MiB
    //    limit. The server must reject from the header alone — before
    //    allocating — so the response arrives although no payload was
    //    ever sent.
    let mut s = evil_socket(server);
    let mut frame = encode_frame(&[0u8; 4]).unwrap();
    frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    s.write_all(&frame[..13]).unwrap();
    let started = Instant::now();
    assert_network_error(read_response(&mut s), "oversized length");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "oversized declaration must be rejected from the header, not awaited"
    );

    // 5. Mid-response connection drop: a valid request whose sender
    //    vanishes before reading the reply. The server's write fails
    //    internally; nothing may leak or wedge.
    let mut s = evil_socket(server);
    let frame = encode_frame(&ping_payload()).unwrap();
    s.write_all(&frame).unwrap();
    drop(s);

    // 6. Slow-loris: half a header, then silence. The server's frame
    //    deadline must evict the connection in bounded time.
    let mut s = evil_socket(server);
    let frame = encode_frame(&ping_payload()).unwrap();
    s.write_all(&frame[..5]).unwrap();
    let started = Instant::now();
    assert_network_error(read_response(&mut s), "slow loris");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "slow-loris eviction took {:?}",
        started.elapsed()
    );

    // 7. Well-framed garbage: the CRC is valid, the payload is not a
    //    request. The stream stays aligned, so the server answers with a
    //    typed error and KEEPS the connection — a ping on the same
    //    socket must still work.
    let mut s = evil_socket(server);
    let frame = encode_frame(&[0xff, 0xee, 0xdd]).unwrap();
    s.write_all(&frame).unwrap();
    match read_response(&mut s) {
        Some(ResponseEnvelope {
            body: ResponseBody::Error(e),
            ..
        }) => assert_eq!(e.kind(), "network"),
        other => panic!("well-framed garbage: expected error frame, got {:?}", other),
    }
    let frame = encode_frame(&ping_payload()).unwrap();
    s.write_all(&frame).unwrap();
    match read_response(&mut s) {
        Some(ResponseEnvelope {
            id: 7,
            body: ResponseBody::Pong,
        }) => {}
        other => panic!("connection unusable after recoverable fault: {:?}", other),
    }
}

/// The corpus with N background clients hammering the same server; every
/// background request must resolve Ok (the server stays fully usable
/// while hostile peers are being evicted).
fn corpus_under_background_load(background: usize) {
    let _guard = serialize();
    let server = start_fault_server();
    let w = ada_workload::gpcr_workload(300, 3, 17);
    let pdb = ada_mdformats::write_pdb(&w.system);
    let xtc = ada_mdformats::xtc::write_xtc(&w.trajectory, ada_mdformats::xtc::DEFAULT_PRECISION)
        .unwrap();
    well_behaved_client(&server, "setup")
        .ingest("shared", &pdb, &xtc, 0)
        .unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..background {
            let server = &server;
            let stop = &stop;
            handles.push(scope.spawn(move || {
                let client = well_behaved_client(server, &format!("bg{}", t));
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    client.query("shared", Some("p")).expect("background query");
                    served += 1;
                }
                served
            }));
        }

        run_fault_corpus(&server);

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let served = h.join().expect("background client must not panic");
            assert!(served > 0, "background client never got a request through");
        }
    });

    // The server is still healthy for a fresh client after the corpus.
    well_behaved_client(&server, "after")
        .query("shared", None)
        .unwrap();
}

#[test]
fn fault_corpus_with_0_background_clients() {
    corpus_under_background_load(0);
}

#[test]
fn fault_corpus_with_1_background_client() {
    corpus_under_background_load(1);
}

#[test]
fn fault_corpus_with_4_background_clients() {
    corpus_under_background_load(4);
}

#[test]
fn fault_corpus_with_8_background_clients() {
    corpus_under_background_load(8);
}

/// The client side of the corpus: a hostile/broken server must surface
/// as typed `AdaError::Network` on the real client — bounded time, no
/// panic — and the client must redial cleanly afterwards.
#[test]
fn hostile_server_yields_typed_client_errors() {
    let _guard = serialize();

    // Each scenario scripts what the "server" writes after accepting.
    type Script = Box<dyn Fn(&mut TcpStream) + Send>;
    let scenarios: Vec<(&str, Script)> = vec![
        ("eof instead of response", Box::new(|_s| {})),
        (
            "truncated response frame",
            Box::new(|s| {
                let frame = encode_frame(&[0xcd; 100]).unwrap();
                s.write_all(&frame[..frame.len() - 90]).unwrap();
            }),
        ),
        (
            "flipped response crc",
            Box::new(|s| {
                let mut frame = encode_frame(&[1, 2, 3, 4]).unwrap();
                frame[10] ^= 0x80;
                s.write_all(&frame).unwrap();
            }),
        ),
        (
            "bad response magic",
            Box::new(|s| {
                let mut frame = encode_frame(&[1, 2, 3, 4]).unwrap();
                frame[0] = b'Z';
                s.write_all(&frame).unwrap();
            }),
        ),
        (
            "oversized response declaration",
            Box::new(|s| {
                let mut frame = encode_frame(&[0u8; 4]).unwrap();
                frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
                s.write_all(&frame[..13]).unwrap();
                std::thread::sleep(Duration::from_millis(600));
            }),
        ),
        (
            "slow-loris response header",
            Box::new(|s| {
                let frame = encode_frame(&[0u8; 4]).unwrap();
                s.write_all(&frame[..5]).unwrap();
                // Stall past the client's io timeout.
                std::thread::sleep(Duration::from_millis(900));
            }),
        ),
        (
            "well-framed garbage response",
            Box::new(|s| {
                let frame = encode_frame(&[0xff; 7]).unwrap();
                s.write_all(&frame).unwrap();
            }),
        ),
    ];

    for (what, script) in scenarios {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let evil = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            // Consume the request frame (scripts that answer before
            // reading would deadlock a large request otherwise).
            let _ = read_frame(&mut stream, DEFAULT_MAX_FRAME);
            script(&mut stream);
            let _ = stream.shutdown(Shutdown::Both);
        });

        let client = Client::new(
            addr.to_string(),
            ClientConfig {
                name: "victim".to_string(),
                io_timeout: Duration::from_millis(500),
                ..ClientConfig::default()
            },
        );
        let started = Instant::now();
        let err = client.ping().expect_err(what);
        assert_eq!(err.kind(), "network", "{}: {}", what, err);
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "{}: client took {:?} to fail",
            what,
            started.elapsed()
        );
        evil.join().expect("evil server thread must not panic");

        // The poisoned connection is dropped; the next call redials and
        // fails with a typed connect error (the listener is gone), not a
        // hang or a panic on a stale socket.
        let err = client.ping().expect_err("listener is gone");
        assert_eq!(err.kind(), "network");
    }
}

/// Graceful shutdown with clients in flight: every in-flight call either
/// completes or fails typed; `shutdown()` joins every server thread; the
/// port stops accepting.
#[test]
fn graceful_shutdown_with_clients_in_flight() {
    let _guard = serialize();
    let mut server = start_fault_server();
    let addr = server.local_addr();
    let w = ada_workload::gpcr_workload(300, 3, 29);
    let pdb = ada_mdformats::write_pdb(&w.system);
    let xtc = ada_mdformats::xtc::write_xtc(&w.trajectory, ada_mdformats::xtc::DEFAULT_PRECISION)
        .unwrap();
    well_behaved_client(&server, "setup")
        .ingest("shared", &pdb, &xtc, 0)
        .unwrap();

    let stop = AtomicBool::new(false);
    let mut total_ok = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4 {
            let stop = &stop;
            let addr_s = addr.to_string();
            handles.push(scope.spawn(move || {
                let client = Client::new(
                    addr_s,
                    ClientConfig {
                        name: format!("inflight{}", t),
                        connect_timeout: Duration::from_secs(1),
                        io_timeout: Duration::from_secs(5),
                        ..ClientConfig::default()
                    },
                );
                let mut ok = 0u64;
                let mut err_kind = None;
                while !stop.load(Ordering::Relaxed) {
                    match client.query("shared", Some("p")) {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            err_kind = Some(e.kind().to_string());
                            break;
                        }
                    }
                }
                (ok, err_kind)
            }));
        }
        // Let the clients get in flight, then pull the plug mid-stream.
        // shutdown() returning means every server thread was joined.
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let (ok, err_kind) = h.join().expect("client thread must not panic");
            total_ok += ok;
            if let Some(kind) = err_kind {
                // In-flight work severed by shutdown fails typed, as a
                // transport error or a shed — never an untyped shape.
                assert!(
                    kind == "network" || kind == "overloaded",
                    "unexpected error kind {}",
                    kind
                );
            }
        }
    });
    assert!(total_ok >= 1, "no request was served before shutdown");

    // The port no longer serves: a fresh client gets a typed error.
    let late = Client::new(
        addr.to_string(),
        ClientConfig {
            name: "late".to_string(),
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        },
    );
    let err = late.ping().expect_err("server is down");
    assert_eq!(err.kind(), "network");
}
