//! Cross-crate middleware-stack tests: PLFS containers over heterogeneous
//! simulated file systems, index persistence/recovery, and the striped FS
//! under the PLFS layer — the Fig. 4/5/6 plumbing exercised together.

use ada_plfs::{ContainerSet, PlfsError};
use ada_simfs::{Content, FsError, LocalFs, SimFileSystem, StripedFs};
use std::sync::Arc;

fn cluster_set() -> ContainerSet {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_ssd_3nodes());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_hdd_3nodes());
    ContainerSet::new(vec![("pvfs-ssd".into(), ssd), ("pvfs-hdd".into(), hdd)])
}

#[test]
fn containers_over_striped_fs() {
    let cs = cluster_set();
    cs.create_logical("bar").unwrap();
    let mb = 1_000_000u64;
    cs.append_tagged("bar", "p", "pvfs-ssd", Content::synthetic(425 * mb))
        .unwrap();
    cs.append_tagged("bar", "m", "pvfs-hdd", Content::synthetic(575 * mb))
        .unwrap();

    // Protein read hits only the SSD PVFS: ~425MB / 510MB/s ≈ 0.83 s.
    let (_, tp) = cs.read_tagged("bar", "p").unwrap();
    assert!(
        tp.as_secs_f64() > 0.7 && tp.as_secs_f64() < 1.0,
        "protein read {}",
        tp.as_secs_f64()
    );
    // Full read bounded by the HDD side: 575MB / 378MB/s ≈ 1.52 s.
    let (_, ta) = cs.read_all("bar").unwrap();
    assert!(
        ta.as_secs_f64() > 1.3 && ta.as_secs_f64() < 1.8,
        "full read {}",
        ta.as_secs_f64()
    );
}

#[test]
fn index_survives_restart_on_striped_backend() {
    let cs = cluster_set();
    cs.create_logical("bar").unwrap();
    cs.append_tagged("bar", "p", "pvfs-ssd", Content::real(vec![7u8; 1000]))
        .unwrap();
    cs.append_tagged("bar", "m", "pvfs-hdd", Content::real(vec![9u8; 2000]))
        .unwrap();
    cs.persist_index("bar").unwrap();

    // Simulate a middleware restart: a fresh ContainerSet over the same
    // backends would normally be used; here we clear and reload.
    let index_before = cs.index("bar").unwrap();
    cs.load_index("bar").unwrap();
    assert_eq!(cs.index("bar").unwrap(), index_before);
    let (p, _) = cs.read_tagged("bar", "p").unwrap();
    assert_eq!(p.as_real().unwrap().as_ref(), &[7u8; 1000][..]);
}

#[test]
fn mixed_local_and_striped_backends() {
    // ADA's architecture allows any SimFileSystem as a backend; mix a
    // local NVMe ext4 with a striped HDD PVFS.
    let local: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let striped: Arc<dyn SimFileSystem> = Arc::new(StripedFs::pvfs_hdd_3nodes());
    let cs = ContainerSet::new(vec![("nvme".into(), local), ("pvfs".into(), striped)]);
    cs.create_logical("bar").unwrap();
    cs.append_tagged("bar", "p", "nvme", Content::real(vec![1u8, 2, 3]))
        .unwrap();
    cs.append_tagged("bar", "m", "pvfs", Content::real(vec![4u8, 5]))
        .unwrap();
    let (all, _) = cs.read_all("bar").unwrap();
    assert_eq!(all.as_real().unwrap().as_ref(), &[1, 2, 3, 4, 5]);
    let by_backend = cs.bytes_by_backend("bar").unwrap();
    assert_eq!(by_backend["nvme"], 3);
    assert_eq!(by_backend["pvfs"], 2);
}

#[test]
fn backend_capacity_errors_propagate() {
    let tiny: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme()); // 256 GB
    let cs = ContainerSet::new(vec![("ssd".into(), tiny)]);
    cs.create_logical("huge").unwrap();
    let err = cs
        .append_tagged("huge", "p", "ssd", Content::synthetic(300_000_000_000))
        .unwrap_err();
    assert!(matches!(err, PlfsError::Fs(FsError::NoSpace { .. })));
}

#[test]
fn many_logical_files_coexist() {
    let cs = cluster_set();
    for i in 0..50 {
        let name = format!("traj{}", i);
        cs.create_logical(&name).unwrap();
        cs.append_tagged(&name, "p", "pvfs-ssd", Content::synthetic(1000 + i))
            .unwrap();
    }
    for i in 0..50 {
        let name = format!("traj{}", i);
        assert_eq!(cs.logical_len(&name).unwrap(), 1000 + i);
        let (c, _) = cs.read_tagged(&name, "p").unwrap();
        assert_eq!(c.len(), 1000 + i);
    }
}
