//! Full-scale calibration validation: build the synthetic system at the
//! paper's actual size (~43.5k atoms, implied by Table 2's 0.522 MB/frame)
//! and check that the *real* codecs reproduce the published byte ratios —
//! not just the analytic model.

use ada_core::categorize_algo1;
use ada_mdmodel::category::Taxonomy;
use ada_mdmodel::Tag;
use ada_workload::calibration::PaperCalibration;

#[test]
fn real_codec_reproduces_table2_ratios_at_paper_scale() {
    let cal = PaperCalibration::default();
    let natoms = cal.implied_natoms(); // ≈ 43,500
    let w = ada_workload::gpcr_workload(natoms, 4, 20260705);

    // Raw volume per frame: 12 B/atom, so ~0.52 MB/frame.
    let raw_per_frame = w.system.len() as f64 * 12.0;
    let rel_raw = (raw_per_frame - cal.raw_bytes_per_frame).abs() / cal.raw_bytes_per_frame;
    assert!(
        rel_raw < 0.08,
        "raw/frame {} vs paper {}",
        raw_per_frame,
        cal.raw_bytes_per_frame
    );

    // Protein fraction: Table 1's 43.5–49 % band.
    let frac = w.system.protein_fraction();
    assert!(frac > 0.40 && frac < 0.50, "protein fraction {}", frac);

    // Compressed volume through the real xdr3dfcoord coder.
    let xtc = ada_mdformats::xtc::write_xtc(&w.trajectory, 1000.0).unwrap();
    let compressed_per_frame = xtc.len() as f64 / w.trajectory.len() as f64;
    let ratio = raw_per_frame / compressed_per_frame;
    // The paper's ratio is 3.27×; real MD data compresses slightly
    // differently than our synthetic motion, so accept 2.3–4.5×.
    assert!(
        ratio > 2.3 && ratio < 4.5,
        "compression ratio {} (paper 3.27)",
        ratio
    );

    // Protein-subset volume through the real splitter.
    let labeler = categorize_algo1(&w.system, &Taxonomy::paper_default());
    let out = ada_core::split_trajectory(&w.trajectory, &labeler).unwrap();
    let protein_bytes = out.subsets[&Tag::protein()].len() as f64 / w.trajectory.len() as f64;
    let rel_prot =
        (protein_bytes - cal.protein_bytes_per_frame).abs() / cal.protein_bytes_per_frame;
    assert!(
        rel_prot < 0.10,
        "protein/frame {} vs paper {}",
        protein_bytes,
        cal.protein_bytes_per_frame
    );
}

#[test]
fn decompression_throughput_is_measurable() {
    // Sanity: this repo's decoder processes real data at a measurable rate
    // (the simulator's 28.6 MB/s constant models the PAPER's hardware and
    // VMD's reader; our decoder on modern hardware should beat it).
    let w = ada_workload::gpcr_workload(20_000, 5, 7);
    let xtc = ada_mdformats::xtc::write_xtc(&w.trajectory, 1000.0).unwrap();
    let raw = w.trajectory.nbytes() as f64;
    let start = std::time::Instant::now();
    let out = ada_mdformats::read_xtc(&xtc).unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(out.len(), 5);
    let mbps = raw / secs / 1e6;
    // Extremely conservative floor — even a debug build should exceed it.
    assert!(mbps > 5.0, "decode at {:.1} MB/s", mbps);
}
