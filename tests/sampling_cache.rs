//! Satellite suite: the decoded-dropping cache under the ML-sampling
//! workload (ISSUE 6 acceptance).
//!
//! What must hold:
//! * **byte identity** — every `query_range` answer with the cache on is
//!   byte-for-byte the answer a cache-off instance gives, across whole
//!   shuffled epochs, under concurrency, and with readahead on;
//! * **the perf claim** — with a budget covering the hot set, steady-state
//!   epochs (2nd onward) decode at least 5x fewer bytes than cache-off;
//! * **readahead** — sequential scans hit more with readahead enabled,
//!   without changing a single delivered byte.

use std::sync::{Arc, Barrier};

use ada_cache::CacheConfig;
use ada_core::{Ada, AdaConfig, IngestInput, QueryReport, RetrievedData};
use ada_frontend::{Frontend, FrontendConfig};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use ada_workload::{shuffled_epochs, SamplingConfig};

/// Hybrid SSD/HDD instance with small droppings (so ranges span several)
/// and the given cache config.
fn make_ada(frames_per_dropping: usize, cache: CacheConfig) -> Arc<Ada> {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        frames_per_dropping,
        cache,
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    Arc::new(Ada::new(config, cs, ssd))
}

fn hot_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 64 << 20,
        shards: 4,
        min_heat: 0,
        readahead: 0,
    }
}

fn cache_off() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 0,
        ..CacheConfig::default()
    }
}

fn real_input(natoms: usize, nframes: usize, seed: u64) -> IngestInput {
    let w = ada_workload::gpcr_workload(natoms, nframes, seed);
    IngestInput::Real {
        pdb_text: ada_mdformats::write_pdb(&w.system),
        xtc_bytes: ada_mdformats::xtc::write_xtc(
            &w.trajectory,
            ada_mdformats::xtc::DEFAULT_PRECISION,
        )
        .unwrap(),
    }
}

/// Canonical byte form of a query result, for byte-identity checks.
fn query_bytes(report: QueryReport) -> Vec<u8> {
    match report.data {
        RetrievedData::Real(traj) => {
            ada_mdformats::xtc::write_xtc(&traj, ada_mdformats::xtc::DEFAULT_PRECISION).unwrap()
        }
        other => panic!("expected real data, got {:?}", other),
    }
}

fn schedule() -> Vec<Vec<ada_workload::Sample>> {
    shuffled_epochs(&SamplingConfig {
        nframes: 96,
        window: 8,
        stride: 2,
        epochs: 3,
        tags: vec!["p".to_string(), "m".to_string()],
        seed: 0xC0FFEE,
    })
}

/// Whole shuffled epochs through a cached instance give byte-identical
/// answers to a cache-off instance, and the cache genuinely engages.
#[test]
fn shuffled_epochs_are_byte_identical_cache_on_vs_off() {
    let cached = make_ada(16, hot_cache());
    let plain = make_ada(16, cache_off());
    cached.ingest("ds", real_input(600, 96, 21)).unwrap();
    plain.ingest("ds", real_input(600, 96, 21)).unwrap();

    for epoch in &schedule() {
        for s in epoch {
            let tag = Tag::new(s.tag.clone());
            let hot = query_bytes(
                cached
                    .query_range("ds", &tag, s.start..s.end, s.stride)
                    .unwrap(),
            );
            let cold = query_bytes(
                plain
                    .query_range("ds", &tag, s.start..s.end, s.stride)
                    .unwrap(),
            );
            assert_eq!(
                hot, cold,
                "cached result diverged for tag {} window {}..{} stride {}",
                s.tag, s.start, s.end, s.stride
            );
        }
    }
    let stats = cached.cache_stats();
    assert!(stats.hits > 0, "cache never engaged: {:?}", stats);
    assert_eq!(plain.cache_stats().hits, 0);
}

/// A full-window stride-1 `query_range` delivers exactly the frames of
/// the plain tagged `query`, cache on or off.
#[test]
fn full_window_range_read_equals_tagged_query() {
    let ada = make_ada(16, hot_cache());
    ada.ingest("ds", real_input(500, 48, 3)).unwrap();
    let tag = Tag::protein();
    let whole = query_bytes(ada.query("ds", Some(&tag)).unwrap());
    // Twice: a cold pass (misses populate) and a warm pass (all hits).
    for pass in 0..2 {
        let ranged = query_bytes(ada.query_range("ds", &tag, 0..48, 1).unwrap());
        assert_eq!(ranged, whole, "pass {} diverged", pass);
    }
    assert!(ada.cache_stats().hits > 0);
}

/// The headline perf claim, asserted: once the hot set is resident,
/// steady-state epochs decode >= 5x fewer bytes than cache-off.
#[test]
fn steady_state_epochs_decode_five_times_less() {
    let run = |cache: CacheConfig| -> Vec<u64> {
        let ada = make_ada(16, cache);
        ada.ingest("ds", real_input(600, 96, 21)).unwrap();
        let mut per_epoch = Vec::new();
        let mut before = ada.cache_stats().bytes_decoded;
        for epoch in &schedule() {
            for s in epoch {
                let tag = Tag::new(s.tag.clone());
                ada.query_range("ds", &tag, s.start..s.end, s.stride)
                    .unwrap();
            }
            let now = ada.cache_stats().bytes_decoded;
            per_epoch.push(now - before);
            before = now;
        }
        per_epoch
    };

    let off = run(cache_off());
    let on = run(hot_cache());
    let off_steady: u64 = off.iter().skip(1).sum();
    let on_steady: u64 = on.iter().skip(1).sum();
    assert!(off_steady > 0, "cache-off run decoded nothing: {:?}", off);
    assert!(
        off_steady >= 5 * on_steady.max(1) || on_steady == 0,
        "steady-state reduction below 5x: off {:?} vs on {:?}",
        off,
        on
    );
    // First epoch pays the decode either way; the budget covers the hot
    // set, so later epochs must be (near-)free.
    assert!(
        on_steady * 5 <= on[0].max(1) * 2,
        "hot-set epochs still decoding heavily: {:?}",
        on
    );
}

/// Eight concurrent clients mixing whole-tag `query` and strided
/// `query_range` through the front-end over ONE shared cached instance:
/// every answer must match a cache-off serial rerun byte for byte.
#[test]
fn concurrent_mixed_reads_match_cache_off_serial_rerun() {
    const CLIENTS: usize = 8;
    const READS_PER_CLIENT: usize = 6;

    // (client, read index) -> deterministic request shape, shared by the
    // concurrent run and the serial reference.
    #[derive(Clone, Copy)]
    enum Read {
        Whole,
        Range {
            start: usize,
            end: usize,
            stride: usize,
        },
    }
    let plan = |t: usize, i: usize| -> (Tag, Read) {
        let tag = if (t + i) % 2 == 0 {
            Tag::protein()
        } else {
            Tag::misc()
        };
        let read = if i % 3 == 0 {
            Read::Whole
        } else {
            let start = ((t * 7 + i * 11) % 40) & !1;
            Read::Range {
                start,
                end: start + 8,
                stride: 1 + i % 2,
            }
        };
        (tag, read)
    };
    let issue = |via_query: &dyn Fn(&Tag) -> QueryReport,
                 via_range: &dyn Fn(&Tag, usize, usize, usize) -> QueryReport,
                 t: usize,
                 i: usize|
     -> Vec<u8> {
        let (tag, read) = plan(t, i);
        match read {
            Read::Whole => query_bytes(via_query(&tag)),
            Read::Range { start, end, stride } => query_bytes(via_range(&tag, start, end, stride)),
        }
    };

    let cached = make_ada(16, hot_cache());
    cached.ingest("ds", real_input(600, 48, 9)).unwrap();
    let fe = Frontend::new(
        Arc::clone(&cached),
        FrontendConfig {
            query_slots: 4,
            query_queue: 64,
            default_deadline: None,
            ..FrontendConfig::default()
        },
    );

    let mut harvested: Vec<(usize, usize, Vec<u8>)> = Vec::new();
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            let fe = &fe;
            let barrier = &barrier;
            let issue = &issue;
            handles.push(scope.spawn(move || {
                let client = format!("c{}", t);
                barrier.wait();
                (0..READS_PER_CLIENT)
                    .map(|i| {
                        let bytes = issue(
                            &|tag| fe.query(&client, "ds", Some(tag)).unwrap(),
                            &|tag, s, e, k| fe.query_range(&client, "ds", tag, s..e, k).unwrap(),
                            t,
                            i,
                        );
                        (t, i, bytes)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            harvested.extend(h.join().expect("client thread must not panic"));
        }
    });
    assert_eq!(harvested.len(), CLIENTS * READS_PER_CLIENT);
    assert!(fe.stats().is_quiescent());
    assert!(
        cached.cache_stats().hits > 0,
        "the mixed workload never hit the cache"
    );

    // Serial cache-off reference.
    let plain = make_ada(16, cache_off());
    plain.ingest("ds", real_input(600, 48, 9)).unwrap();
    for (t, i, bytes) in &harvested {
        let expect = issue(
            &|tag| plain.query("ds", Some(tag)).unwrap(),
            &|tag, s, e, k| plain.query_range("ds", tag, s..e, k).unwrap(),
            *t,
            *i,
        );
        assert_eq!(
            &expect, bytes,
            "client {} read {} diverged from the cache-off serial rerun",
            t, i
        );
    }
}

/// Readahead: a forward sequential scan hits more with readahead enabled
/// — and still delivers identical bytes.
#[test]
fn readahead_raises_hit_rate_without_changing_bytes() {
    let scan = |readahead: usize| -> (Vec<Vec<u8>>, ada_cache::CacheStats) {
        let ada = make_ada(
            8,
            CacheConfig {
                readahead,
                ..hot_cache()
            },
        );
        ada.ingest("ds", real_input(400, 64, 5)).unwrap();
        let tag = Tag::protein();
        let mut out = Vec::new();
        // One forward pass, window == dropping size: without readahead
        // every window cold-misses; with readahead=1 each fetch warms the
        // next window.
        for start in (0..64).step_by(8) {
            out.push(query_bytes(
                ada.query_range("ds", &tag, start..start + 8, 1).unwrap(),
            ));
        }
        (out, ada.cache_stats())
    };

    let (plain_bytes, plain_stats) = scan(0);
    let (ahead_bytes, ahead_stats) = scan(1);
    assert_eq!(
        plain_bytes, ahead_bytes,
        "readahead changed delivered bytes"
    );
    assert!(
        ahead_stats.hits > plain_stats.hits,
        "readahead did not raise hits: {:?} vs {:?}",
        ahead_stats,
        plain_stats
    );
}
