//! Pipelined ingest must be observably identical to the serial baseline:
//! same label file, same per-tag stored bytes, and bit-equal query
//! payloads — for every split-thread count, for both the batch path
//! ([`Ada::ingest`]) and the streaming pipeline
//! ([`Ada::ingest_streaming`]).

use ada_core::{Ada, AdaConfig, IngestInput, RetrievedData};
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdformats::xtcf::{XTCF_DIR_ENTRY_LEN, XTCF_HEADER_LEN, XTCF_TRAILER_LEN};
use ada_mdformats::{write_pdb, Trajectory};
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use std::sync::Arc;

/// Hybrid SSD/HDD ADA with explicit parallelism knobs.
fn ada_with(split_threads: usize, pipeline_depth: usize) -> Ada {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        split_threads,
        pipeline_depth,
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    Ada::new(config, containers, ssd)
}

struct Workload {
    pdb_text: String,
    xtc_bytes: Vec<u8>,
    nframes: usize,
}

fn workload() -> Workload {
    let w = ada_workload::gpcr_workload(1600, 7, 11);
    Workload {
        pdb_text: write_pdb(&w.system),
        xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        nframes: w.trajectory.len(),
    }
}

fn query_real(ada: &Ada, dataset: &str, tag: Option<&ada_mdmodel::Tag>) -> Trajectory {
    match ada.query(dataset, tag).unwrap().data {
        RetrievedData::Real(t) => t,
        _ => unreachable!("real ingest must yield real data"),
    }
}

/// Per-dropping framing overhead of a sealed single-chunk XTCF v2 file:
/// the v1 header plus one chunk-directory entry plus the footer trailer.
/// Exact here because every dropping these tests produce holds fewer
/// frames than `AdaConfig::chunk_frames`.
const DROPPING_OVERHEAD: u64 = (XTCF_HEADER_LEN + XTCF_DIR_ENTRY_LEN + XTCF_TRAILER_LEN) as u64;

/// Every observable output of `b` equals `a`'s: label file, per-tag
/// stored bytes (modulo `extra_droppings_per_tag` sealed droppings'
/// framing), and bit-equal per-tag and untagged query payloads.
fn assert_equivalent(
    a: (&Ada, &ada_core::IngestReport),
    b: (&Ada, &ada_core::IngestReport),
    extra_droppings_per_tag: u64,
    what: &str,
) {
    let (ada_a, rep_a) = a;
    let (ada_b, rep_b) = b;
    assert_eq!(rep_a.raw_bytes, rep_b.raw_bytes, "{}: raw bytes", what);

    let label_a = ada_a.label(&rep_a.dataset).unwrap();
    let label_b = ada_b.label(&rep_b.dataset).unwrap();
    assert_eq!(label_a.natoms, label_b.natoms, "{}: label natoms", what);
    assert_eq!(label_a.nframes, label_b.nframes, "{}: label nframes", what);
    assert_eq!(label_a.tags, label_b.tags, "{}: label tag ranges", what);

    let overhead = extra_droppings_per_tag * DROPPING_OVERHEAD;
    assert_eq!(
        rep_a.bytes_by_tag.keys().collect::<Vec<_>>(),
        rep_b.bytes_by_tag.keys().collect::<Vec<_>>(),
        "{}: tag set",
        what
    );
    for (tag, &bytes_a) in &rep_a.bytes_by_tag {
        let bytes_b = rep_b.bytes_by_tag[tag];
        assert_eq!(
            bytes_a + overhead,
            bytes_b,
            "{}: stored bytes for tag {:?}",
            what,
            tag
        );
    }

    // XTCF is lossless, so delivered coordinates must be bit-equal.
    for tag in rep_a.bytes_by_tag.keys() {
        assert_eq!(
            query_real(ada_a, &rep_a.dataset, Some(tag)),
            query_real(ada_b, &rep_b.dataset, Some(tag)),
            "{}: query payload for tag {:?}",
            what,
            tag
        );
    }
    assert_eq!(
        query_real(ada_a, &rep_a.dataset, None),
        query_real(ada_b, &rep_b.dataset, None),
        "{}: untagged query payload",
        what
    );
}

#[test]
fn batch_ingest_parallel_split_matches_serial() {
    let w = workload();
    let serial = ada_with(1, 1);
    let rep_serial = serial
        .ingest(
            "d",
            IngestInput::Real {
                pdb_text: w.pdb_text.clone(),
                xtc_bytes: w.xtc_bytes.clone(),
            },
        )
        .unwrap();
    for threads in [2, 4, 8] {
        let par = ada_with(threads, 2);
        let rep_par = par
            .ingest(
                "d",
                IngestInput::Real {
                    pdb_text: w.pdb_text.clone(),
                    xtc_bytes: w.xtc_bytes.clone(),
                },
            )
            .unwrap();
        assert_equivalent(
            (&serial, &rep_serial),
            (&par, &rep_par),
            0,
            &format!("ingest threads={}", threads),
        );
    }
}

#[test]
fn streaming_pipeline_matches_serial_streaming() {
    let w = workload();
    let batch = 2; // 7 frames -> batches of 2,2,2,1
    let serial = ada_with(1, 1);
    let rep_serial = serial
        .ingest_streaming("d", &w.pdb_text, &w.xtc_bytes, batch)
        .unwrap();
    for (threads, depth) in [(2, 1), (4, 4), (8, 3)] {
        let par = ada_with(threads, depth);
        let rep_par = par
            .ingest_streaming("d", &w.pdb_text, &w.xtc_bytes, batch)
            .unwrap();
        // Same batch size ⇒ same droppings ⇒ byte totals exactly equal.
        assert_equivalent(
            (&serial, &rep_serial),
            (&par, &rep_par),
            0,
            &format!("streaming threads={} depth={}", threads, depth),
        );
    }
}

#[test]
fn streaming_matches_batch_ingest_modulo_chunk_headers() {
    let w = workload();
    let batch_ada = ada_with(4, 2);
    let rep_batch = batch_ada
        .ingest(
            "d",
            IngestInput::Real {
                pdb_text: w.pdb_text.clone(),
                xtc_bytes: w.xtc_bytes.clone(),
            },
        )
        .unwrap();

    // batch_frames ≥ nframes: one streaming dropping per tag, exactly
    // like the batch path (frames_per_dropping ≫ nframes here).
    let stream_one = ada_with(4, 2);
    let rep_one = stream_one
        .ingest_streaming("d", &w.pdb_text, &w.xtc_bytes, w.nframes)
        .unwrap();
    assert_equivalent(
        (&batch_ada, &rep_batch),
        (&stream_one, &rep_one),
        0,
        "streaming single-batch",
    );

    // Small batches: 7 frames / 3 = 3 droppings per tag, i.e. two extra
    // droppings' framing per tag over the batch path's single dropping.
    let stream_many = ada_with(4, 2);
    let rep_many = stream_many
        .ingest_streaming("d", &w.pdb_text, &w.xtc_bytes, 3)
        .unwrap();
    assert_equivalent(
        (&batch_ada, &rep_batch),
        (&stream_many, &rep_many),
        2,
        "streaming batch=3",
    );
}
