//! Satellite suite (ISSUE 10): the networked path is semantically
//! transparent.
//!
//! What must hold:
//! * eight mixed ingest/query/query_range clients over real TCP get
//!   results byte-identical to a serial rerun of the same accepted set
//!   on a fresh, in-process instance (queries cross the wire as
//!   canonical XTC bytes, so the comparison is on the actual payload);
//! * remote errors keep their exact `kind()` — `unknown_dataset` and
//!   `invalid_range` cross the wire as themselves, not as a generic
//!   network failure;
//! * a traced remote request seals ONE connected tree under the
//!   client's trace id: the server's spans are rooted from the
//!   wire-carried id instead of minting a disconnected root.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use ada_client::{Client, ClientConfig};
use ada_core::{Ada, AdaConfig, IngestInput, RetrievedData};
use ada_frontend::{Frontend, FrontendConfig};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_server::{Server, ServerConfig};
use ada_simfs::{LocalFs, SimFileSystem};
use ada_telemetry::trace;

static GUARD: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn make_ada() -> Arc<Ada> {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Arc::new(Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd))
}

fn start_server() -> Server {
    let fe = Arc::new(Frontend::new(
        make_ada(),
        FrontendConfig {
            ingest_slots: 2,
            query_slots: 4,
            ingest_queue: 64,
            query_queue: 64,
            default_deadline: None,
            ..FrontendConfig::default()
        },
    ));
    Server::start(fe, ServerConfig::default()).expect("server must start")
}

fn client_for(server: &Server, name: &str) -> Client {
    Client::new(
        server.local_addr().to_string(),
        ClientConfig {
            name: name.to_string(),
            ..ClientConfig::default()
        },
    )
}

/// `(pdb_text, xtc_bytes)` of a deterministic workload.
fn real_bytes(natoms: usize, nframes: usize, seed: u64) -> (String, Vec<u8>) {
    let w = ada_workload::gpcr_workload(natoms, nframes, seed);
    (
        ada_mdformats::write_pdb(&w.system),
        ada_mdformats::xtc::write_xtc(&w.trajectory, ada_mdformats::xtc::DEFAULT_PRECISION)
            .unwrap(),
    )
}

fn real_input(natoms: usize, nframes: usize, seed: u64) -> IngestInput {
    let (pdb_text, xtc_bytes) = real_bytes(natoms, nframes, seed);
    IngestInput::Real {
        pdb_text,
        xtc_bytes,
    }
}

/// Canonical byte form of an in-process query result.
fn query_bytes(rep: ada_core::QueryReport) -> Vec<u8> {
    match rep.data {
        RetrievedData::Real(traj) => {
            ada_mdformats::xtc::write_xtc(&traj, ada_mdformats::xtc::DEFAULT_PRECISION).unwrap()
        }
        other => panic!("expected real data, got {:?}", other),
    }
}

/// The wire payload of a remote query (already canonical XTC bytes).
fn wire_bytes(rep: ada_proto::WireQueryReport) -> Vec<u8> {
    match rep.payload {
        ada_proto::WirePayload::Xtc(bytes) => bytes,
        other => panic!("expected XTC payload, got {:?}", other),
    }
}

fn tag_cycle(i: usize) -> Option<Tag> {
    match i % 3 {
        0 => Some(Tag::protein()),
        1 => Some(Tag::misc()),
        _ => None,
    }
}

/// One client's operation log entry, replayable against a serial
/// in-process reference.
enum Op {
    Query {
        dataset: String,
        tag_idx: usize,
        bytes: Vec<u8>,
    },
    QueryRange {
        dataset: String,
        start: usize,
        end: usize,
        stride: usize,
        bytes: Vec<u8>,
    },
}

/// Eight mixed clients over real TCP; every harvested payload must match
/// a serial in-process rerun byte for byte.
#[test]
fn eight_tcp_clients_match_in_process_serial_byte_for_byte() {
    let _guard = serialize();
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 4;
    let mut server = start_server();

    // Shared dataset every client can read.
    let (pdb, xtc) = real_bytes(500, 6, 7);
    client_for(&server, "setup")
        .ingest("shared", &pdb, &xtc, 0)
        .unwrap();

    let barrier = Barrier::new(CLIENTS);
    let mut harvested: Vec<Op> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            let server = &server;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let client = client_for(server, &format!("c{}", t));
                barrier.wait();
                let mut out = Vec::new();
                // Odd clients first ingest a private dataset — half of
                // them through the streaming path — exercising
                // ingest/query interleaving over the wire.
                let dataset = if t % 2 == 1 {
                    let name = format!("ds{}", t);
                    let (pdb, xtc) = real_bytes(400, 4, 100 + t as u64);
                    let batch = if t % 4 == 1 { 2 } else { 0 };
                    client.ingest(&name, &pdb, &xtc, batch).unwrap();
                    name
                } else {
                    "shared".to_string()
                };
                for i in 0..QUERIES_PER_CLIENT {
                    if i == QUERIES_PER_CLIENT - 1 {
                        // Last op: a strided range read of the protein tag.
                        let rep = client.query_range(&dataset, "p", 0, 4, 2).unwrap();
                        out.push(Op::QueryRange {
                            dataset: dataset.clone(),
                            start: 0,
                            end: 4,
                            stride: 2,
                            bytes: wire_bytes(rep),
                        });
                    } else {
                        let tag = tag_cycle(i);
                        let rep = client
                            .query(&dataset, tag.as_ref().map(|t| t.as_str()))
                            .unwrap();
                        out.push(Op::Query {
                            dataset: dataset.clone(),
                            tag_idx: i % 3,
                            bytes: wire_bytes(rep),
                        });
                    }
                }
                out
            }));
        }
        for h in handles {
            harvested.extend(h.join().expect("client thread must not panic"));
        }
    });
    server.shutdown();
    assert_eq!(harvested.len(), CLIENTS * QUERIES_PER_CLIENT);

    // Serial reference: a fresh in-process instance, one thread.
    let serial = make_ada();
    serial.ingest("shared", real_input(500, 6, 7)).unwrap();
    for t in (1..CLIENTS).step_by(2) {
        serial
            .ingest(&format!("ds{}", t), real_input(400, 4, 100 + t as u64))
            .unwrap();
    }
    for op in &harvested {
        match op {
            Op::Query {
                dataset,
                tag_idx,
                bytes,
            } => {
                let tag = tag_cycle(*tag_idx);
                let expect = query_bytes(serial.query(dataset, tag.as_ref()).unwrap());
                assert_eq!(
                    &expect, bytes,
                    "remote query of {} (tag {:?}) diverged from in-process serial",
                    dataset, tag
                );
            }
            Op::QueryRange {
                dataset,
                start,
                end,
                stride,
                bytes,
            } => {
                let expect = query_bytes(
                    serial
                        .query_range(dataset, &Tag::protein(), *start..*end, *stride)
                        .unwrap(),
                );
                assert_eq!(
                    &expect, bytes,
                    "remote range query of {} diverged from in-process serial",
                    dataset
                );
            }
        }
    }
}

/// Remote failures keep their exact kind: the wire carries the full
/// `AdaError` structure, not a lossy "remote error" wrapper.
#[test]
fn remote_error_kinds_match_in_process() {
    let _guard = serialize();
    let mut server = start_server();
    let client = client_for(&server, "errs");
    let (pdb, xtc) = real_bytes(300, 3, 21);
    client.ingest("ds", &pdb, &xtc, 0).unwrap();

    // unknown dataset
    let remote = client.query("no-such-dataset", None).unwrap_err();
    assert_eq!(remote.kind(), "unknown_dataset");

    // invalid range (frames beyond the trajectory)
    let remote = client.query_range("ds", "p", 0, 5000, 1).unwrap_err();
    assert_eq!(remote.kind(), "invalid_range");

    // unknown tag
    let remote = client.query("ds", Some("zz")).unwrap_err();
    assert_eq!(remote.kind(), "unknown_tag");

    // In-process reference: identical kinds AND identical Display text.
    let serial = make_ada();
    serial.ingest("ds", real_input(300, 3, 21)).unwrap();
    let local = serial.query("no-such-dataset", None).unwrap_err();
    let remote = client.query("no-such-dataset", None).unwrap_err();
    assert_eq!(local.kind(), remote.kind());
    assert_eq!(local.to_string(), remote.to_string());
    let local = serial
        .query_range("ds", &Tag::protein(), 0..5000, 1)
        .unwrap_err();
    let remote = client.query_range("ds", "p", 0, 5000, 1).unwrap_err();
    assert_eq!(local.kind(), remote.kind());
    assert_eq!(local.to_string(), remote.to_string());

    server.shutdown();
}

/// Ingest reports survive the wire: simulated stage durations and the
/// stored-volume accounting match an identical in-process ingest.
#[test]
fn remote_ingest_report_matches_in_process() {
    let _guard = serialize();
    let mut server = start_server();
    let client = client_for(&server, "rep");
    let (pdb, xtc) = real_bytes(350, 4, 33);
    let wire = client.ingest("ds", &pdb, &xtc, 0).unwrap();
    server.shutdown();

    let serial = make_ada();
    let local = serial.ingest("ds", real_input(350, 4, 33)).unwrap();
    let rebuilt = wire.into_report();
    assert_eq!(rebuilt.dataset, local.dataset);
    assert_eq!(rebuilt.raw_bytes, local.raw_bytes);
    assert_eq!(rebuilt.bytes_by_tag, local.bytes_by_tag);
    assert_eq!(rebuilt.total(), local.total());
}

/// A traced remote request produces ONE server-side tree sealed under
/// the client's trace id — the wire carries the id, `root_remote` adopts
/// it, and the frontend's spans nest under that root.
#[test]
fn server_trace_tree_adopts_the_wire_trace_id() {
    let _guard = serialize();
    trace::set_tracing(true);
    trace::recorder().clear();

    let mut server = start_server();
    let client = client_for(&server, "traced");
    let (pdb, xtc) = real_bytes(300, 3, 55);
    client.ingest("ds", &pdb, &xtc, 0).unwrap();
    client.query("ds", Some("p")).unwrap();
    server.shutdown();

    let traces = trace::recorder().recent();
    let client_roots: Vec<_> = traces
        .iter()
        .filter(|t| {
            t.root()
                .map(|r| r.name == "client.request")
                .unwrap_or(false)
        })
        .collect();
    let server_roots: Vec<_> = traces
        .iter()
        .filter(|t| {
            t.root()
                .map(|r| r.name == "server.request")
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(client_roots.len(), 2, "one client tree per request");
    assert_eq!(server_roots.len(), 2, "one server tree per request");
    for st in &server_roots {
        assert!(
            client_roots.iter().any(|ct| ct.id == st.id),
            "server tree {:x} does not share its id with any client tree",
            st.id
        );
        // The frontend's spans sealed under the adopted root: the tree
        // has more than the bare root span.
        assert!(
            st.spans.len() > 1,
            "server tree {:x} carries no frontend spans",
            st.id
        );
    }
    trace::set_tracing(false);
}
