//! Trace-level verification of the paper's central I/O claim: a tagged
//! protein query must never touch the HDD backend, and the byte volumes
//! seen on the wire must equal the label's subset sizes.

use ada_core::{Ada, AdaConfig, IngestInput};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, OpKind, SimFileSystem, TraceLog};
use std::sync::Arc;

fn traced_rig() -> (Ada, TraceLog, TraceLog) {
    let ssd_trace = TraceLog::new();
    let hdd_trace = TraceLog::new();
    let ssd: Arc<dyn SimFileSystem> =
        Arc::new(LocalFs::ext4_on_nvme().with_trace(ssd_trace.clone()));
    let hdd: Arc<dyn SimFileSystem> =
        Arc::new(LocalFs::ext4_on_hdd().with_trace(hdd_trace.clone()));
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd);
    (ada, ssd_trace, hdd_trace)
}

#[test]
fn protein_query_never_reads_the_hdd() {
    let (ada, ssd_trace, hdd_trace) = traced_rig();
    let w = ada_workload::gpcr_workload(2500, 3, 777);
    ada.ingest(
        "bar",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();

    ssd_trace.clear();
    hdd_trace.clear();
    ada.query("bar", Some(&Tag::protein())).unwrap();

    // Not a single read hit the HDD backend.
    let hdd_reads = hdd_trace.bytes_where(|e| matches!(e.op, OpKind::Read | OpKind::ReadRange));
    assert_eq!(hdd_reads, 0, "HDD events: {:?}", hdd_trace.events());
    // The SSD served exactly the protein droppings.
    let ssd_reads = ssd_trace.bytes_where(|e| e.op == OpKind::Read);
    let label = ada.label("bar").unwrap();
    let expected = label.atoms_of(&Tag::protein()) as u64 * 12 * 3;
    // XTCF framing adds headers; reads must be >= payload and < +5%.
    assert!(
        ssd_reads >= expected && ssd_reads < expected * 105 / 100,
        "ssd read {} vs expected ~{}",
        ssd_reads,
        expected
    );
    // Every SSD read touched a protein dropping path.
    for e in ssd_trace.events() {
        if e.op == OpKind::Read {
            assert!(
                e.path.contains("dropping.data.p"),
                "unexpected read: {}",
                e.path
            );
        }
    }
}

#[test]
fn misc_query_never_reads_the_ssd_droppings() {
    let (ada, ssd_trace, _hdd_trace) = traced_rig();
    let w = ada_workload::gpcr_workload(2000, 2, 778);
    ada.ingest(
        "bar",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();
    ssd_trace.clear();
    ada.query("bar", Some(&Tag::misc())).unwrap();
    let dropping_reads = ssd_trace
        .events()
        .into_iter()
        .filter(|e| e.op == OpKind::Read && e.path.contains("dropping.data"))
        .count();
    assert_eq!(dropping_reads, 0);
}

#[test]
fn ingest_write_volume_matches_raw_plus_framing() {
    let (ada, ssd_trace, hdd_trace) = traced_rig();
    let w = ada_workload::gpcr_workload(1500, 4, 779);
    let report = ada
        .ingest(
            "bar",
            IngestInput::Real {
                pdb_text: write_pdb(&w.system),
                xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
            },
        )
        .unwrap();
    let written = ssd_trace.bytes_where(|e| matches!(e.op, OpKind::Create | OpKind::Append))
        + hdd_trace.bytes_where(|e| matches!(e.op, OpKind::Create | OpKind::Append));
    // Everything decompressed got written once, plus label/index/markers.
    assert!(written >= report.raw_bytes);
    assert!(written < report.raw_bytes * 102 / 100 + 100_000);
}
