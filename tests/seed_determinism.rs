//! Satellite suite: the full workload-gen → ingest → query pipeline is
//! byte-deterministic under a fixed seed, *including* the parallel paths
//! (batch-parallel streaming decode, splitter pool, parallel retrieval).
//!
//! Two independent runs with the same seed must leave byte-identical
//! artifacts on the simulated storage — every dropping, the persisted
//! PLFS index, and the label file — and deliver byte-identical query
//! results. A different seed must (trivially) diverge, proving the
//! comparison actually looks at bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use ada_core::{Ada, AdaConfig, RetrievedData};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};

struct Rig {
    ada: Ada,
    ssd: Arc<dyn SimFileSystem>,
    hdd: Arc<dyn SimFileSystem>,
}

fn rig() -> Rig {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd.clone()),
    ]));
    // paper_prototype keeps every parallel knob on (decode_threads,
    // split_threads=all cores, query_threads) — exactly the paths whose
    // determinism this suite locks in.
    let ada = Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd.clone());
    Rig { ada, ssd, hdd }
}

/// Run the whole pipeline for `seed` and dump every artifact byte:
/// `backend-prefixed path → content` for both backends (droppings +
/// persisted index + label file), plus canonical bytes of each query
/// path's delivered data.
fn artifacts(seed: u64) -> BTreeMap<String, Vec<u8>> {
    let r = rig();
    let w = ada_workload::gpcr_workload(1200, 6, seed);
    let pdb = ada_mdformats::write_pdb(&w.system);
    let xtc = ada_mdformats::xtc::write_xtc(&w.trajectory, ada_mdformats::xtc::DEFAULT_PRECISION)
        .unwrap();
    // Streaming ingest: decoder (batch-parallel) → splitter pool →
    // reordering dispatcher, 2 frames per batch to force many batches.
    r.ada.ingest_streaming("bar", &pdb, &xtc, 2).unwrap();

    let mut out = BTreeMap::new();
    for (name, fs) in [("ssd", &r.ssd), ("hdd", &r.hdd)] {
        for path in fs.list("") {
            let (content, _) = fs.read(&path).unwrap();
            let bytes = content
                .as_real()
                .unwrap_or_else(|| panic!("artifact {} is not real bytes", path))
                .to_vec();
            out.insert(format!("{}:{}", name, path), bytes);
        }
    }
    for (label, tag) in [
        ("query:protein", Some(Tag::protein())),
        ("query:misc", Some(Tag::misc())),
        ("query:full", None),
    ] {
        let q = r.ada.query("bar", tag.as_ref()).unwrap();
        let traj = match q.data {
            RetrievedData::Real(t) => t,
            other => panic!("expected real data, got {:?}", other),
        };
        out.insert(
            label.to_string(),
            ada_mdformats::xtc::write_xtc(&traj, ada_mdformats::xtc::DEFAULT_PRECISION).unwrap(),
        );
    }
    out
}

#[test]
fn same_seed_is_byte_identical_across_runs() {
    let a = artifacts(42);
    let b = artifacts(42);
    // Compare path sets first for a readable failure.
    let pa: Vec<&String> = a.keys().collect();
    let pb: Vec<&String> = b.keys().collect();
    assert_eq!(pa, pb, "artifact path sets diverged between same-seed runs");
    for (path, bytes) in &a {
        assert_eq!(
            bytes, &b[path],
            "artifact {} diverged between same-seed runs",
            path
        );
    }
    // Sanity: the run actually produced droppings, an index, and a label.
    assert!(a.keys().any(|p| p.contains("dropping.data")));
    assert!(a.keys().any(|p| p.contains("index")));
    assert!(a.keys().any(|p| p.contains("label")));
}

#[test]
fn different_seed_diverges() {
    let a = artifacts(1);
    let b = artifacts(2);
    assert_ne!(a, b, "different seeds must produce different artifacts");
}
