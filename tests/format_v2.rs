//! XTCF v2 corruption corpus and the v1 compatibility gate.
//!
//! Droppings are sealed as chunked, self-describing v2 containers; this
//! suite feeds broken variants of every structural element (chunk body,
//! chunk directory, trailer) through the serial and parallel query
//! pipelines and asserts typed `xtcf` errors plus a still-usable [`Ada`] —
//! and pins the v1 read shim with a golden on-disk fixture that must keep
//! decoding bit-identically forever.

use ada_core::{Ada, AdaConfig, IngestInput, RetrievedData};
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdformats::xtcf::{
    parse_directory, read_xtcf, write_xtcf, XtcfReader, XTCF_DIR_ENTRY_LEN, XTCF_TRAILER_LEN,
};
use ada_mdformats::{write_pdb, Frame, Trajectory};
use ada_mdmodel::{PbcBox, Tag};
use ada_plfs::ContainerSet;
use ada_simfs::{Content, LocalFs, SimFileSystem};
use std::sync::Arc;

/// Every pipeline shape the decode path can take: serial reference, one
/// worker, and genuinely parallel fan-out.
const THREADS: [usize; 4] = [0, 1, 4, 8];

struct Rig {
    ada: Ada,
    ssd: Arc<dyn SimFileSystem>,
}

/// Hybrid rig sealing 2-frame chunks, so one 8-frame dropping carries a
/// 4-entry chunk directory worth corrupting piecewise.
fn rig(query_threads: usize) -> Rig {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        query_threads,
        frames_per_dropping: 8,
        chunk_frames: 2,
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    Rig {
        ada: Ada::new(config, containers, ssd.clone()),
        ssd,
    }
}

fn ingest(r: &Rig) {
    let w = ada_workload::gpcr_workload(900, 8, 47);
    r.ada
        .ingest(
            "d",
            IngestInput::Real {
                pdb_text: write_pdb(&w.system),
                xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
            },
        )
        .unwrap();
}

fn protein_dropping(r: &Rig) -> (String, Vec<u8>) {
    let path = r
        .ssd
        .list("ssd/d/hostdir.0/")
        .into_iter()
        .find(|p| p.contains("dropping.data.p"))
        .expect("protein dropping exists");
    let (content, _) = r.ssd.read(&path).unwrap();
    let bytes = content.as_real().expect("real dropping").to_vec();
    (path, bytes)
}

fn rewrite(r: &Rig, path: &str, bytes: Vec<u8>) {
    r.ssd.delete(path).unwrap();
    r.ssd.create(path, Content::real(bytes)).unwrap();
}

fn query_real(ada: &Ada, tag: Option<&Tag>) -> Trajectory {
    match ada.query("d", tag).unwrap().data {
        RetrievedData::Real(t) => t,
        _ => unreachable!("real ingest must yield real data"),
    }
}

/// Corpus driver: `mutate` breaks the protein dropping's bytes; tagged and
/// untagged queries must fail with a typed `xtcf` error whose message
/// names both the dropping and `detail`, on every pipeline shape — and
/// the instance must stay fully usable afterwards.
fn assert_corrupt(what: &str, detail: &str, mutate: impl Fn(Vec<u8>) -> Vec<u8>) {
    for threads in THREADS {
        let r = rig(threads);
        ingest(&r);
        let (path, bytes) = protein_dropping(&r);
        rewrite(&r, &path, mutate(bytes));
        for tag in [Some(Tag::protein()), None] {
            let err = r.ada.query("d", tag.as_ref()).unwrap_err();
            assert_eq!(
                err.kind(),
                "xtcf",
                "{} threads={} tag={:?}: got {:?}",
                what,
                threads,
                tag,
                err
            );
            let msg = err.to_string();
            assert!(
                msg.contains(&path),
                "{}: error names the dropping: {}",
                what,
                msg
            );
            assert!(
                msg.contains(detail),
                "{}: wanted {:?} in: {}",
                what,
                detail,
                msg
            );
        }
        // MISC never touches the broken dropping: the pipeline survived
        // (a dead stage thread would poison later queries).
        assert!(
            r.ada.query("d", Some(&Tag::misc())).is_ok(),
            "{} threads={}: instance unusable after failed query",
            what,
            threads
        );
    }
}

#[test]
fn flipped_chunk_byte_fails_checksum_with_chunk_id() {
    assert_corrupt("flipped byte", "corrupt chunk 1", |mut b| {
        // parse the real directory to land the flip inside chunk 1's body
        let dir = parse_directory(&b).unwrap().expect("sealed v2");
        let at = dir.entries[1].offset as usize + 5;
        b[at] ^= 0xFF;
        b
    });
    assert_corrupt("flipped byte", "checksum mismatch", |mut b| {
        let dir = parse_directory(&b).unwrap().expect("sealed v2");
        let at = dir.entries[1].offset as usize + 5;
        b[at] ^= 0xFF;
        b
    });
}

#[test]
fn truncated_chunk_directory_is_a_typed_error() {
    // A trailer claiming more entries than the file holds.
    assert_corrupt("oversized nchunks", "truncated chunk directory", |mut b| {
        let t = b.len() - XTCF_TRAILER_LEN;
        b[t..t + 4].copy_from_slice(&0xFFFFu32.to_le_bytes());
        b
    });
    // A tail chop that eats into the trailer itself.
    assert_corrupt("chopped tail", "bad footer magic", |mut b| {
        b.truncate(b.len() - 5);
        b
    });
}

#[test]
fn zero_frame_chunk_entry_is_a_typed_error() {
    assert_corrupt("zero-frame chunk", "zero frames", |mut b| {
        let dir = parse_directory(&b).unwrap().expect("sealed v2");
        let dir_start = b.len() - XTCF_TRAILER_LEN - dir.nchunks() * XTCF_DIR_ENTRY_LEN;
        b[dir_start + 8..dir_start + 12].copy_from_slice(&0u32.to_le_bytes());
        b
    });
}

#[test]
fn windows_clear_of_the_corrupt_chunk_still_decode() {
    // Random access is the point of the chunk directory: breaking chunk 1
    // must not take down reads that only touch chunk 0.
    for threads in THREADS {
        let r = rig(threads);
        ingest(&r);
        let reference = query_real(&r.ada, Some(&Tag::protein()));
        let (path, mut bytes) = protein_dropping(&r);
        let dir = parse_directory(&bytes).unwrap().expect("sealed v2");
        let at = dir.entries[1].offset as usize + 5;
        bytes[at] ^= 0xFF;
        rewrite(&r, &path, bytes);
        let win = match r
            .ada
            .query_range("d", &Tag::protein(), 0..2, 1)
            .unwrap()
            .data
        {
            RetrievedData::Real(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(
            win.frames,
            reference.frames[0..2],
            "threads={}: chunk 0 must decode cleanly past corrupt chunk 1",
            threads
        );
        // The window over the broken chunk still fails, typed.
        let err = r
            .ada
            .query_range("d", &Tag::protein(), 2..4, 1)
            .unwrap_err();
        assert_eq!(err.kind(), "xtcf", "threads={}", threads);
    }
}

#[test]
fn v1_dropping_fed_to_v2_path_decodes_identically() {
    // The compatibility shim: a dropping written in the v1 format (no
    // directory, no trailer) must keep decoding bit-identically through
    // the chunk-aware read path.
    for threads in THREADS {
        let r = rig(threads);
        ingest(&r);
        let reference = query_real(&r.ada, Some(&Tag::protein()));
        let full_reference = query_real(&r.ada, None);
        let (path, bytes) = protein_dropping(&r);
        // Strip the v2 framing by re-encoding the same frames as v1.
        let frames = read_xtcf(&bytes).unwrap();
        let v1_bytes = write_xtcf(&frames).unwrap();
        assert!(
            parse_directory(&v1_bytes).unwrap().is_none(),
            "substitute must be a genuine v1 file"
        );
        rewrite(&r, &path, v1_bytes);
        assert_eq!(
            query_real(&r.ada, Some(&Tag::protein())),
            reference,
            "threads={}: v1 shim drifted on the tagged query",
            threads
        );
        assert_eq!(
            query_real(&r.ada, None),
            full_reference,
            "threads={}: v1 shim drifted on the untagged query",
            threads
        );
    }
}

/// Deterministic frames for the golden fixture: pure arithmetic, no RNG,
/// so the regenerator always reproduces the committed bytes.
fn golden_traj() -> Trajectory {
    let mut frames = Vec::new();
    for s in 0..5i32 {
        let coords = (0..7i32)
            .map(|a| {
                [
                    s as f32 + a as f32 * 0.25,
                    a as f32 * 0.5 - s as f32,
                    (a * a) as f32 * 0.125,
                ]
            })
            .collect();
        frames.push(Frame {
            step: s * 10,
            time: s as f32 * 0.002,
            pbc: PbcBox::rectangular(4.0, 4.0, 4.0),
            coords,
        });
    }
    Trajectory::from_frames(frames)
}

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v1.xtcf");

/// The v1→v2 compatibility gate run by the verify workflow: the committed
/// v1 fixture must parse as v1, decode to the known frames, and re-encode
/// to its exact committed bytes. Any drift in the v1 reader or writer
/// fails here before it can corrupt archived droppings.
#[test]
fn golden_v1_fixture_decodes_bit_identically() {
    let bytes = std::fs::read(GOLDEN).expect(
        "golden fixture present (rebuild: cargo test --test format_v2 -- --ignored regenerate_golden_fixture)",
    );
    let reader = XtcfReader::new(&bytes).unwrap();
    assert_eq!(reader.version(), 1, "fixture must stay a v1 file");
    assert!(reader.directory().is_none());
    drop(reader);
    assert!(parse_directory(&bytes).unwrap().is_none());
    let traj = read_xtcf(&bytes).unwrap();
    assert_eq!(traj, golden_traj(), "v1 decode drifted");
    assert_eq!(write_xtcf(&traj).unwrap(), bytes, "v1 re-encode drifted");
}

/// Rebuild the committed fixture after an intentional format change:
/// `cargo test --test format_v2 -- --ignored regenerate_golden_fixture`.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).unwrap();
    std::fs::write(GOLDEN, write_xtcf(&golden_traj()).unwrap()).unwrap();
}
