//! End-to-end integration: workload generator → real PDB/XTC bytes → ADA
//! ingest on the storage side → VMD session on the compute side →
//! rendered animation — the complete Fig. 3b data path on real bytes.

use ada_core::{IngestInput, RetrievedData};
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdformats::{read_xtc, write_pdb};
use ada_mdmodel::{Category, Tag};
use ada_repro::ada_over_hybrid_storage;
use ada_vmdsim::{RenderOptions, VmdSession};

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() < 0.5 / 1000.0 + 1e-6
}

#[test]
fn full_pipeline_real_bytes() {
    let w = ada_workload::gpcr_workload(3000, 5, 4242);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();

    // Storage side.
    let ada = ada_over_hybrid_storage();
    let report = ada
        .ingest(
            "cb1",
            IngestInput::Real {
                pdb_text: pdb_text.clone(),
                xtc_bytes: xtc_bytes.clone(),
            },
        )
        .unwrap();
    // Every decompressed byte is stored exactly once across the two tags
    // (modulo XTCF per-dropping headers).
    let stored: u64 = report.bytes_by_tag.values().sum();
    let raw = w.trajectory.nbytes() as u64;
    assert!(
        stored >= raw && stored < raw + 4096,
        "stored {} raw {}",
        stored,
        raw
    );

    // Compute side: tagged load, then render.
    let mut vmd = VmdSession::new();
    let id = vmd.mol_new(&pdb_text).unwrap();
    vmd.mol_addfile_ada(id, &ada, "cb1", Some(&Tag::protein()))
        .unwrap();
    let mol = vmd.molecule(id);
    let prot_atoms = w.system.category_ranges(Category::Protein).count();
    assert_eq!(mol.system.len(), prot_atoms);
    assert_eq!(mol.frames.len(), 5);

    // The delivered coordinates equal the XTC-quantized originals.
    let ranges = w.system.category_ranges(Category::Protein);
    let quantized = read_xtc(&xtc_bytes).unwrap();
    for (frame, qframe) in mol.frames.iter().zip(&quantized.frames) {
        let expect = ranges.gather(&qframe.coords);
        assert_eq!(frame.coords.len(), expect.len());
        for (a, b) in frame.coords.iter().zip(&expect) {
            for d in 0..3 {
                assert!(close(a[d], b[d]), "{} vs {}", a[d], b[d]);
            }
        }
    }

    // And it renders.
    let stats = vmd.animate(id, &RenderOptions::default(), 3);
    assert_eq!(stats.len(), 5);
    assert!(stats.iter().all(|s| s.pixels_filled > 50));
}

#[test]
fn misc_subset_complements_protein() {
    let w = ada_workload::gpcr_workload(2000, 3, 7);
    let ada = ada_over_hybrid_storage();
    ada.ingest(
        "cb1",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();

    let p = match ada.query("cb1", Some(&Tag::protein())).unwrap().data {
        RetrievedData::Real(t) => t,
        _ => unreachable!(),
    };
    let m = match ada.query("cb1", Some(&Tag::misc())).unwrap().data {
        RetrievedData::Real(t) => t,
        _ => unreachable!(),
    };
    assert_eq!(p.natoms() + m.natoms(), w.system.len());
    assert_eq!(p.len(), m.len());
    // Paper Table 1: protein < 50% of the system.
    assert!(p.natoms() < m.natoms());
}

#[test]
fn untagged_query_equals_direct_decode() {
    let w = ada_workload::gpcr_workload(1500, 4, 99);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let ada = ada_over_hybrid_storage();
    ada.ingest(
        "cb1",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: xtc_bytes.clone(),
        },
    )
    .unwrap();
    let via_ada = match ada.query("cb1", None).unwrap().data {
        RetrievedData::Real(t) => t,
        _ => unreachable!(),
    };
    let direct = read_xtc(&xtc_bytes).unwrap();
    assert_eq!(via_ada.len(), direct.len());
    for (a, b) in via_ada.frames.iter().zip(&direct.frames) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.coords.len(), b.coords.len());
        for (ca, cb) in a.coords.iter().zip(&b.coords) {
            for d in 0..3 {
                // ADA stores the decompressed lattice exactly (XTCF is
                // lossless), so this must be bit-equal to the decode.
                assert_eq!(ca[d], cb[d]);
            }
        }
    }
}

#[test]
fn ingest_is_idempotent_per_dataset_name() {
    let w = ada_workload::gpcr_workload(800, 1, 3);
    let ada = ada_over_hybrid_storage();
    let input = || IngestInput::Real {
        pdb_text: write_pdb(&w.system),
        xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
    };
    ada.ingest("x", input()).unwrap();
    // Second ingest under the same name collides on the logical file.
    assert!(ada.ingest("x", input()).is_err());
    // A different name is fine.
    assert!(ada.ingest("y", input()).is_ok());
}
