//! A miniature Fig. 7 with *real bytes*: all four Table 3 scenarios run on
//! an actual workload through the actual middleware — no synthetic
//! volumes — and the orderings the paper reports must still hold.
//!
//! This closes the loop between the two data planes: the synthetic-mode
//! figures (crates/platforms) and the real codecs agree on who wins.

use ada_core::{Ada, AdaConfig, DispatchPolicy, IngestInput, RetrievedData};
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdformats::{write_pdb, write_xtcf};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{Content, LocalFs, SimFileSystem};
use ada_storagesim::{CpuProfile, CpuWork, SimDuration};
use std::sync::Arc;

struct RealRun {
    label: &'static str,
    retrieval: SimDuration,
    turnaround: SimDuration,
    resident_bytes: u64,
}

/// Execute the four scenarios over a real workload on an NVMe ext4 stack.
fn run_real_fig7(natoms: usize, nframes: usize) -> Vec<RealRun> {
    let w = ada_workload::gpcr_workload(natoms, nframes, 31337);
    let pdb_text = write_pdb(&w.system);
    let xtc_bytes = write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap();
    let raw_xtcf = write_xtcf(&w.trajectory).unwrap();
    let cpu = CpuProfile::xeon_e5_2603_v4();

    // Plain ext4 holding both variants.
    let plain = LocalFs::ext4_on_nvme();
    plain
        .create("bar.xtc", Content::real(xtc_bytes.clone()))
        .unwrap();
    plain
        .create("bar.raw", Content::real(raw_xtcf.clone()))
        .unwrap();

    // ADA over the same device class.
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let cs = Arc::new(ContainerSet::new(vec![("ssd".into(), ssd.clone())]));
    let cfg = AdaConfig {
        policy: DispatchPolicy::all_to("ssd"),
        ..AdaConfig::paper_prototype("ssd", "ssd")
    };
    let ada = Ada::new(cfg, cs, ssd);
    ada.ingest(
        "bar",
        IngestInput::Real {
            pdb_text,
            xtc_bytes: xtc_bytes.clone(),
        },
    )
    .unwrap();

    let render = |bytes: u64| CpuWork::Render { bytes }.duration(&cpu);
    let scan = |bytes: u64| CpuWork::Scan { bytes }.duration(&cpu);
    let raw_bytes = w.trajectory.nbytes() as u64;
    let label = ada.label("bar").unwrap();
    let protein_bytes = label.atoms_of(&Tag::protein()) as u64 * 12 * nframes as u64;

    let mut out = Vec::new();

    // C-ext4: read compressed, decompress for real, scan, render protein.
    {
        let (content, read) = plain.read("bar.xtc").unwrap();
        let decoded = ada_mdformats::read_xtc(content.as_real().unwrap()).unwrap();
        let decompress = CpuWork::Decompress {
            out_bytes: decoded.nbytes() as u64,
        }
        .duration(&cpu);
        out.push(RealRun {
            label: "C-ext4",
            retrieval: read,
            turnaround: read + decompress + scan(raw_bytes) + render(protein_bytes),
            resident_bytes: decoded.nbytes() as u64,
        });
    }

    // D-ext4: read raw XTCF, scan, render.
    {
        let (content, read) = plain.read("bar.raw").unwrap();
        let decoded = ada_mdformats::read_xtcf(content.as_real().unwrap()).unwrap();
        out.push(RealRun {
            label: "D-ext4",
            retrieval: read,
            turnaround: read + scan(raw_bytes) + render(protein_bytes),
            resident_bytes: decoded.nbytes() as u64,
        });
    }

    // D-ADA(all): everything via ADA + indexer, scan, render.
    {
        let q = ada.query("bar", None).unwrap();
        let traj = match q.data {
            RetrievedData::Real(t) => t,
            _ => unreachable!(),
        };
        out.push(RealRun {
            label: "D-ADA (all)",
            retrieval: q.read + q.indexer,
            turnaround: q.read + q.indexer + scan(raw_bytes) + render(protein_bytes),
            resident_bytes: traj.nbytes() as u64,
        });
    }

    // D-ADA(protein): subset via ADA, render only.
    {
        let q = ada.query("bar", Some(&Tag::protein())).unwrap();
        let traj = match q.data {
            RetrievedData::Real(t) => t,
            _ => unreachable!(),
        };
        out.push(RealRun {
            label: "D-ADA (protein)",
            retrieval: q.read + q.indexer,
            turnaround: q.read + q.indexer + render(protein_bytes),
            resident_bytes: traj.nbytes() as u64,
        });
    }
    out
}

fn get<'a>(runs: &'a [RealRun], label: &str) -> &'a RealRun {
    runs.iter().find(|r| r.label == label).unwrap()
}

#[test]
fn real_bytes_reproduce_fig7_orderings() {
    // Large enough that transfer times dominate fixed latencies (the
    // indexer's 4 ms base swamps a kilobyte-scale read; at paper scale it
    // is the "slightly longer" effect, and ~50 MB of raw data suffices to
    // land in that regime).
    let runs = run_real_fig7(20_000, 200);
    let c = get(&runs, "C-ext4");
    let d = get(&runs, "D-ext4");
    let all = get(&runs, "D-ADA (all)");
    let prot = get(&runs, "D-ADA (protein)");

    // Fig. 7a: C fastest retrieval; protein between; ADA(all) ≈ D but
    // slightly slower (indexer).
    assert!(c.retrieval < prot.retrieval);
    assert!(prot.retrieval < d.retrieval);
    assert!(all.retrieval > d.retrieval);
    assert!(all.retrieval.as_secs_f64() < d.retrieval.as_secs_f64() * 1.5);

    // Fig. 7b: turnaround C worst (decompression), ADA(protein) best.
    assert!(c.turnaround > d.turnaround);
    assert!(d.turnaround > prot.turnaround);
    let speedup = c.turnaround.as_secs_f64() / prot.turnaround.as_secs_f64();
    assert!(speedup > 5.0, "real-mode speedup {}", speedup);

    // Fig. 7c: memory — ADA(protein) resident set is the protein fraction.
    let ratio = c.resident_bytes as f64 / prot.resident_bytes as f64;
    assert!(ratio > 2.0 && ratio < 2.7, "memory ratio {}", ratio);
    // The delivered subsets are byte-identical in count with the raw set.
    assert_eq!(all.resident_bytes, c.resident_bytes);
}

#[test]
fn real_bytes_speedup_grows_with_frames() {
    let small = run_real_fig7(2000, 2);
    let large = run_real_fig7(2000, 10);
    let gap = |runs: &[RealRun]| {
        get(runs, "C-ext4").turnaround.as_secs_f64()
            / get(runs, "D-ADA (protein)").turnaround.as_secs_f64()
    };
    // More frames → more decompression avoided → bigger win (the Fig. 7b
    // "as the number of frames increases" trend).
    assert!(
        gap(&large) > gap(&small),
        "{} vs {}",
        gap(&large),
        gap(&small)
    );
}
