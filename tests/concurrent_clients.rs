//! Satellite suite: N client threads issuing mixed ingest/query traffic
//! against ONE shared `Ada` through the admission front-end.
//!
//! What must hold (ISSUE 5 acceptance):
//! * no deadlock, no panic — every client thread joins;
//! * every request resolves to success or a *typed* rejection
//!   (`overloaded` / `deadline_exceeded`), never an untyped failure;
//! * accepted query outputs are byte-identical to a serial run of the
//!   same accepted set on a fresh, serially-driven instance;
//! * the front-end's accounting balances at quiescence.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use ada_core::{Ada, AdaConfig, AdaError, IngestInput, RetrievedData};
use ada_frontend::{Frontend, FrontendConfig, Request};
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};

fn make_ada() -> Arc<Ada> {
    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let cs = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    Arc::new(Ada::new(AdaConfig::paper_prototype("ssd", "hdd"), cs, ssd))
}

fn real_input(natoms: usize, nframes: usize, seed: u64) -> IngestInput {
    let w = ada_workload::gpcr_workload(natoms, nframes, seed);
    IngestInput::Real {
        pdb_text: ada_mdformats::write_pdb(&w.system),
        xtc_bytes: ada_mdformats::xtc::write_xtc(
            &w.trajectory,
            ada_mdformats::xtc::DEFAULT_PRECISION,
        )
        .unwrap(),
    }
}

/// Canonical byte form of a query result, for the byte-identity check.
fn query_bytes(ada_result: ada_core::QueryReport) -> Vec<u8> {
    match ada_result.data {
        RetrievedData::Real(traj) => {
            ada_mdformats::xtc::write_xtc(&traj, ada_mdformats::xtc::DEFAULT_PRECISION).unwrap()
        }
        other => panic!("expected real data, got {:?}", other),
    }
}

fn tag_cycle(i: usize) -> Option<Tag> {
    match i % 3 {
        0 => Some(Tag::protein()),
        1 => Some(Tag::misc()),
        _ => None,
    }
}

/// Eight concurrent clients, mixed traffic, generous queues: everything
/// must succeed and match a serial rerun byte for byte.
#[test]
fn eight_mixed_clients_match_serial_byte_for_byte() {
    const CLIENTS: usize = 8;
    const QUERIES_PER_CLIENT: usize = 6;
    let fe = Frontend::new(
        make_ada(),
        FrontendConfig {
            ingest_slots: 2,
            query_slots: 4,
            ingest_queue: 64,
            query_queue: 64,
            default_deadline: None,
            ..FrontendConfig::default()
        },
    );
    fe.ingest("setup", "shared", real_input(500, 3, 7)).unwrap();

    // (dataset, tag index, bytes) per accepted query, collected per thread.
    let mut harvested: Vec<(String, usize, Vec<u8>)> = Vec::new();
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            let fe = &fe;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let client = format!("c{}", t);
                barrier.wait();
                let mut out = Vec::new();
                // Odd clients first ingest a private dataset, exercising
                // ingest/query interleaving on the shared instance.
                let dataset = if t % 2 == 1 {
                    let name = format!("ds{}", t);
                    fe.ingest(&client, &name, real_input(400, 2, 100 + t as u64))
                        .unwrap();
                    name
                } else {
                    "shared".to_string()
                };
                for i in 0..QUERIES_PER_CLIENT {
                    let tag = tag_cycle(i);
                    let q = fe.query(&client, &dataset, tag.as_ref()).unwrap();
                    out.push((dataset.clone(), i % 3, query_bytes(q)));
                }
                out
            }));
        }
        for h in handles {
            harvested.extend(h.join().expect("client thread must not panic"));
        }
    });

    // Accounting must balance now that every client returned.
    let s = fe.stats();
    assert!(s.is_quiescent(), "front-end not quiescent: {:?}", s);
    assert_eq!(s.ingest.counters.submitted, 1 + CLIENTS as u64 / 2);
    assert_eq!(
        s.query.counters.submitted,
        (CLIENTS * QUERIES_PER_CLIENT) as u64
    );
    assert_eq!(
        s.query.counters.rejected, 0,
        "queues were sized to admit all"
    );

    // Serial reference: a fresh instance, driven from one thread, same
    // accepted set. Every concurrent result must match byte-for-byte.
    let serial = make_ada();
    serial.ingest("shared", real_input(500, 3, 7)).unwrap();
    for t in (1..CLIENTS).step_by(2) {
        serial
            .ingest(&format!("ds{}", t), real_input(400, 2, 100 + t as u64))
            .unwrap();
    }
    for (dataset, tag_idx, bytes) in &harvested {
        let tag = tag_cycle(*tag_idx);
        let expect = query_bytes(serial.query(dataset, tag.as_ref()).unwrap());
        assert_eq!(
            &expect, bytes,
            "concurrent query of {} (tag {:?}) diverged from serial",
            dataset, tag
        );
    }
    assert_eq!(
        harvested.len(),
        CLIENTS * QUERIES_PER_CLIENT,
        "every accepted query must be harvested"
    );
}

/// A starved configuration (1 slot, 1 queue entry) under a thundering
/// herd: accepted requests succeed, the rest are shed with a typed
/// `Overloaded` carrying the queue depth and a usable retry hint.
#[test]
fn thundering_herd_sheds_typed_overloads() {
    const CLIENTS: usize = 8;
    // The race (all clients must overlap) is real but heavily stacked in
    // the test's favor: full-frame queries over this dataset take
    // milliseconds while the submit window after the barrier is
    // microseconds. Retry the scenario a few times to make the test
    // deterministic in practice on any scheduler.
    for attempt in 0..5 {
        let fe = Frontend::new(
            make_ada(),
            FrontendConfig {
                ingest_slots: 1,
                query_slots: 1,
                ingest_queue: 1,
                query_queue: 1,
                default_deadline: None,
                ..FrontendConfig::default()
            },
        );
        fe.ingest("setup", "big", real_input(2500, 8, 11)).unwrap();

        let barrier = Barrier::new(CLIENTS);
        let mut ok = 0u64;
        let mut overloaded = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..CLIENTS {
                let fe = &fe;
                let barrier = &barrier;
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    fe.query(&format!("c{}", t), "big", None)
                }));
            }
            for h in handles {
                match h.join().expect("client thread must not panic") {
                    Ok(_) => ok += 1,
                    Err(AdaError::Overloaded {
                        queue_depth,
                        retry_after,
                    }) => {
                        assert!(queue_depth >= 1);
                        assert!(retry_after > Duration::ZERO);
                        overloaded += 1;
                    }
                    Err(other) => panic!("untyped rejection: {:?}", other),
                }
            }
        });
        assert_eq!(ok + overloaded, CLIENTS as u64);
        assert!(ok >= 1, "at least one request must be served");
        let s = fe.stats();
        assert!(s.is_quiescent(), "front-end not quiescent: {:?}", s);
        assert_eq!(s.query.counters.rejected, overloaded);
        assert_eq!(s.query.counters.admitted, ok);
        if overloaded >= 1 {
            return; // contention observed and fully typed — done
        }
        eprintln!(
            "attempt {}: herd fully serialized ({} ok), retrying",
            attempt, ok
        );
    }
    panic!("8 clients through a 1-slot/1-deep queue never overlapped in 5 attempts");
}

/// Requests whose deadline expires while queued come back as typed
/// `DeadlineExceeded`, and the scheduler accounts them as expired.
#[test]
fn queued_deadline_misses_are_typed() {
    const CLIENTS: usize = 4;
    let fe = Frontend::new(
        make_ada(),
        FrontendConfig {
            ingest_slots: 1,
            query_slots: 1,
            ingest_queue: 8,
            query_queue: 8,
            default_deadline: None,
            ..FrontendConfig::default()
        },
    );
    fe.ingest("setup", "bar", real_input(400, 2, 3)).unwrap();

    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..CLIENTS {
            let fe = &fe;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                // 1 ns is always in the past by the time a worker pops.
                fe.submit(
                    &format!("c{}", t),
                    Request::Query {
                        dataset: "bar".into(),
                        tag: None,
                    },
                    Some(Duration::from_nanos(1)),
                )
            }));
        }
        for h in handles {
            match h.join().expect("client thread must not panic") {
                Err(AdaError::DeadlineExceeded { waited, deadline }) => {
                    assert!(waited >= deadline);
                }
                other => panic!("expected a deadline miss, got {:?}", other),
            }
        }
    });
    let s = fe.stats();
    assert!(s.is_quiescent(), "front-end not quiescent: {:?}", s);
    assert_eq!(s.query.counters.expired, CLIENTS as u64);
    assert_eq!(s.query.counters.admitted, 0);
}
