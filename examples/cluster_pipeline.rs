//! Replay the §4.2 nine-node cluster experiment at one frame count: all
//! four Table 3 scenarios through the simulated OrangeFS/PLFS/ADA stack.
//!
//! ```text
//! cargo run --release --example cluster_pipeline [frames]
//! ```

use ada_platforms::report::{fmt_bytes, fmt_secs, format_table};
use ada_platforms::{run_scenario, Platform, Scenario};

fn main() {
    let frames: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6256);
    let platform = Platform::cluster9();
    println!(
        "platform: {}\ndataset: {} frames (paper-calibrated volumes)\n",
        platform.name, frames
    );

    let rows: Vec<Vec<String>> = Scenario::ALL
        .iter()
        .map(|&s| {
            let m = run_scenario(&platform, s, frames);
            vec![
                m.label.clone(),
                fmt_bytes(m.delivered_bytes),
                fmt_secs((m.retrieval + m.indexer).as_secs_f64()),
                fmt_secs(m.decompress.as_secs_f64()),
                fmt_secs(m.scan.as_secs_f64()),
                fmt_secs(m.render.as_secs_f64()),
                fmt_secs(m.turnaround().as_secs_f64()),
                fmt_bytes(m.mem_peak_bytes),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            "Cluster run (one compute node's view)",
            &[
                "scenario",
                "delivered",
                "retrieval",
                "decompress",
                "locate",
                "render",
                "turnaround",
                "peak mem"
            ],
            &rows
        )
    );
    println!("the protein path skips decompression AND the HDD nodes entirely;");
    println!("the compressed path pays the decompression bill on every single replay.");
}
