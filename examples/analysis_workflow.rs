//! A scientist's analysis session: fetch only the protein through ADA and
//! run the usual trajectory measures (RMSD, radius of gyration, RMSF) on
//! 42% of the data — plus drawing-style render stats for the report.
//!
//! ```text
//! cargo run --release --example analysis_workflow
//! ```

use ada_core::{IngestInput, RetrievedData};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::{parse_selection, Category, Tag};
use ada_repro::ada_over_hybrid_storage;
use ada_vmdsim::{radius_of_gyration, render_frame, rmsd_series, rmsf, DrawStyle, RenderOptions};

fn main() {
    let w = ada_workload::gpcr_workload(6000, 15, 314);
    let ada = ada_over_hybrid_storage();
    ada.ingest(
        "cb1",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();

    // Fetch the protein subset only.
    let q = ada.query("cb1", Some(&Tag::protein())).unwrap();
    let traj = match q.data {
        RetrievedData::Real(t) => t,
        _ => unreachable!(),
    };
    let ranges = w.system.category_ranges(Category::Protein);
    let protein = w.system.subset(&ranges);
    println!(
        "analysis input: {} protein atoms x {} frames ({} kB; raw would be {} kB)",
        traj.natoms(),
        traj.len(),
        traj.nbytes() / 1000,
        w.trajectory.nbytes() / 1000
    );

    // RMSD vs frame 0 and radius of gyration per frame.
    let rmsd = rmsd_series(&traj.frames, 4);
    println!("\nframe   time(ps)   RMSD(nm)    Rg(nm)");
    for (i, f) in traj.frames.iter().enumerate() {
        let rg = radius_of_gyration(&protein, &f.coords);
        println!("{:>5} {:>9.1} {:>10.4} {:>9.4}", i, f.time, rmsd[i], rg);
    }

    // Mobility profile: mean RMSF of backbone vs side chains.
    let fluct = rmsf(&traj.frames);
    let backbone = parse_selection("backbone").unwrap().evaluate(&protein);
    let side = backbone.complement(protein.len());
    let mean = |r: &ada_mdmodel::IndexRanges| -> f64 {
        r.iter_indices().map(|i| fluct[i]).sum::<f64>() / r.count().max(1) as f64
    };
    println!(
        "\nRMSF: backbone {:.4} nm vs side chains {:.4} nm ({} backbone atoms)",
        mean(&backbone),
        mean(&side),
        backbone.count()
    );

    // Report-quality render stats in each style.
    println!("\nrender styles on the last frame:");
    for style in [
        DrawStyle::Points,
        DrawStyle::Lines,
        DrawStyle::Licorice,
        DrawStyle::Vdw,
    ] {
        let bonds = ada_mdmodel::infer_bonds(
            &protein,
            &protein.coords,
            ada_mdmodel::bonds::DEFAULT_TOLERANCE,
        );
        let stats = render_frame(
            &protein,
            &bonds,
            &traj.frames.last().unwrap().coords,
            &RenderOptions {
                style,
                ..RenderOptions::default()
            },
        );
        println!(
            "  {:?}: {} atoms, {} bonds, {} px",
            style, stats.atoms_drawn, stats.bonds_drawn, stats.pixels_filled
        );
    }
}
