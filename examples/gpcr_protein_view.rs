//! The full VMD workflow on the GPCR study: load a structure, load
//! trajectory data (traditional vs ADA-tagged), render the animation, and
//! replay it through the §2.1 frame cache to see why smaller frames make
//! playback smoother.
//!
//! ```text
//! cargo run --release --example gpcr_protein_view
//! ```

use ada_core::IngestInput;
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_repro::ada_over_hybrid_storage;
use ada_vmdsim::{AccessPattern, FrameCache, RenderOptions, VmdSession};

fn main() {
    let workload = ada_workload::gpcr_workload(8_000, 12, 77);
    let pdb_text = write_pdb(&workload.system);
    let xtc_bytes = write_xtc(&workload.trajectory, DEFAULT_PRECISION).unwrap();

    let ada = ada_over_hybrid_storage();
    ada.ingest(
        "cb1",
        IngestInput::Real {
            pdb_text: pdb_text.clone(),
            xtc_bytes: xtc_bytes.clone(),
        },
    )
    .unwrap();

    // --- Traditional VMD: everything decompressed on the compute node.
    let mut vmd = VmdSession::new();
    let full = vmd.mol_new(&pdb_text).unwrap();
    vmd.mol_addfile_xtc(full, &xtc_bytes).unwrap();
    let full_stats = vmd.animate(full, &RenderOptions::default(), 4);
    let full_bytes = vmd.molecule(full).frames_bytes();
    println!(
        "traditional load: {} atoms, {} frames, {} kB resident, {} px avg",
        vmd.molecule(full).system.len(),
        full_stats.len(),
        full_bytes / 1000,
        full_stats.iter().map(|s| s.pixels_filled).sum::<usize>() / full_stats.len()
    );

    // --- ADA path: `mol addfile /mnt/cb1.xtc tag p`.
    let prot = vmd.mol_new(&pdb_text).unwrap();
    vmd.mol_addfile_ada(prot, &ada, "cb1", Some(&Tag::protein()))
        .unwrap();
    let prot_stats = vmd.animate(prot, &RenderOptions::default(), 4);
    let prot_bytes = vmd.molecule(prot).frames_bytes();
    println!(
        "ADA tag-p load:   {} atoms, {} frames, {} kB resident, {} px avg",
        vmd.molecule(prot).system.len(),
        prot_stats.len(),
        prot_bytes / 1000,
        prot_stats.iter().map(|s| s.pixels_filled).sum::<usize>() / prot_stats.len()
    );
    println!(
        "memory for rendering reduced {:.2}x\n",
        full_bytes as f64 / prot_bytes as f64
    );

    // --- Playback: scrub back and forth with a bounded frame cache.
    let budget = full_bytes / 2; // a cache holding half the raw animation
    let frame_raw = full_bytes / 12;
    let frame_prot = prot_bytes / 12;
    let pattern = AccessPattern::BackAndForth { cycles: 4 };
    let mut raw_cache = FrameCache::new(budget, frame_raw.max(1));
    let mut prot_cache = FrameCache::new(budget, frame_prot.max(1));
    let raw_replay = raw_cache.replay(pattern, 12);
    let prot_replay = prot_cache.replay(pattern, 12);
    println!("playback (back-and-forth x4, cache = half the raw animation):");
    println!(
        "  raw frames:     hit rate {:>5.1}%  ({} misses)",
        raw_replay.hit_rate() * 100.0,
        raw_replay.misses
    );
    println!(
        "  protein frames: hit rate {:>5.1}%  ({} misses)",
        prot_replay.hit_rate() * 100.0,
        prot_replay.misses
    );
    println!("  smaller frames -> more of the animation stays cached -> fluent replay");
}
