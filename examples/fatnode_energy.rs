//! The §4.3 "just buy more memory" experiment: sweep the fat node's frame
//! counts and watch who gets OOM-killed and what the power meter says.
//!
//! ```text
//! cargo run --release --example fatnode_energy
//! ```

use ada_platforms::figures::FIG10_SCENARIOS;
use ada_platforms::report::{fmt_secs, format_table};
use ada_platforms::{run_scenario, KillPoint, Platform};

fn main() {
    let platform = Platform::fatnode();
    println!("platform: {}\n", platform.name);
    let frames = [
        625_600u64, 1_564_000, 1_876_800, 2_502_400, 4_379_200, 5_004_800,
    ];
    let mut rows = Vec::new();
    for &f in &frames {
        for &s in &FIG10_SCENARIOS {
            let m = run_scenario(&platform, s, f);
            rows.push(vec![
                f.to_string(),
                m.label.clone(),
                fmt_secs(m.turnaround().as_secs_f64()),
                format!("{:.0} GB", m.mem_peak_bytes as f64 / 1e9),
                format!("{:.0} kJ", m.energy_kj),
                match m.killed {
                    None => "ok".to_string(),
                    Some(KillPoint::DuringRender) => "KILLED (render)".to_string(),
                    Some(KillPoint::DuringLoad) => "KILLED (load)".to_string(),
                },
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            "Fat node (1,007 GB): turnaround / memory / energy / OOM",
            &[
                "frames",
                "scenario",
                "turnaround",
                "peak mem",
                "energy",
                "outcome"
            ],
            &rows
        )
    );
    println!("XFS and ADA(all) die at 1,876,800 frames; ADA(protein) renders");
    println!("2x+ more frames on the same DRAM and uses a fraction of the energy —");
    println!("bigger memory delays the wall, application-conscious filtering moves it.");
}
