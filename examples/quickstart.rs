//! Quickstart: ingest a GPCR-like trajectory through ADA and fetch only
//! the protein subset — the `mol addfile /mnt/bar.xtc tag p` workflow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ada_core::{IngestInput, RetrievedData};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_repro::ada_over_hybrid_storage;

fn main() {
    // 1. A synthetic GPCR-like system standing in for the CB1 dataset:
    //    ~12k atoms, 10 frames, ~42% protein by atoms.
    let workload = ada_workload::gpcr_workload(12_000, 10, 2026);
    let pdb_text = write_pdb(&workload.system);
    let xtc_bytes = write_xtc(&workload.trajectory, DEFAULT_PRECISION).unwrap();
    println!(
        "workload: {} atoms ({:.1}% protein), {} frames",
        workload.system.len(),
        workload.system.protein_fraction() * 100.0,
        workload.trajectory.len()
    );
    println!(
        "  .pdb: {} kB   .xtc (compressed): {} kB   raw: {} kB",
        pdb_text.len() / 1000,
        xtc_bytes.len() / 1000,
        workload.trajectory.nbytes() / 1000
    );

    // 2. ADA over a hybrid SSD+HDD deployment. Sending the files to
    //    storage triggers the data pre-processor: decompress, categorize
    //    (Algorithm 1), label, split, dispatch.
    let ada = ada_over_hybrid_storage();
    assert!(ada.traps("bar.xtc"), "ADA traps target-application files");
    let report = ada
        .ingest(
            "bar",
            IngestInput::Real {
                pdb_text,
                xtc_bytes,
            },
        )
        .unwrap();
    println!("\ningest (on the storage node):");
    println!(
        "  decompress: {:>8.3} s (virtual)",
        report.decompress.as_secs_f64()
    );
    println!("  categorize: {:>8.3} s", report.categorize.as_secs_f64());
    println!("  split:      {:>8.3} s", report.split.as_secs_f64());
    println!("  write:      {:>8.3} s", report.write.as_secs_f64());
    for (tag, bytes) in &report.bytes_by_tag {
        println!("  stored tag '{}': {} kB", tag, bytes / 1000);
    }
    let placement = ada.containers().bytes_by_backend("bar").unwrap();
    for (backend, bytes) in &placement {
        println!("  backend '{}': {} kB", backend, bytes / 1000);
    }

    // 3. The biologist asks for the protein only.
    let q = ada.query("bar", Some(&Tag::protein())).unwrap();
    let traj = match q.data {
        RetrievedData::Real(t) => t,
        _ => unreachable!(),
    };
    println!("\nquery tag 'p':");
    println!(
        "  indexer: {:.4} s, read: {:.4} s (virtual)",
        q.indexer.as_secs_f64(),
        q.read.as_secs_f64()
    );
    println!(
        "  delivered {} frames x {} protein atoms = {} kB (vs {} kB raw)",
        traj.len(),
        traj.natoms(),
        traj.nbytes() / 1000,
        workload.trajectory.nbytes() / 1000
    );
    println!(
        "  data reduction: {:.1}x less data shipped to the compute node",
        workload.trajectory.nbytes() as f64 / traj.nbytes() as f64
    );
}
