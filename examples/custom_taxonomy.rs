//! The paper's future-work feature, implemented: a user-supplied
//! configuration file describes the raw-data taxonomy, and ADA categorizes
//! accordingly — here separating lipids from the rest of MISC and fetching
//! just the membrane.
//!
//! ```text
//! cargo run --release --example custom_taxonomy
//! ```

use ada_core::{Ada, AdaConfig, DispatchPolicy, IngestInput, RetrievedData};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::category::Taxonomy;
use ada_mdmodel::Tag;
use ada_plfs::ContainerSet;
use ada_simfs::{LocalFs, SimFileSystem};
use std::sync::Arc;

const TAXONOMY_CONFIG: &str = r#"
# GPCR membrane study: protein and membrane are both active.
tag p = category protein
tag l = resname POPC POPE CHL1        # the bilayer
tag i = category ion
default m                             # water and the rest
"#;

fn main() {
    let taxonomy = Taxonomy::parse_config(TAXONOMY_CONFIG).expect("config parses");
    println!(
        "taxonomy tags: {:?}",
        taxonomy
            .all_tags()
            .iter()
            .map(Tag::as_str)
            .collect::<Vec<_>>()
    );

    let ssd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_nvme());
    let hdd: Arc<dyn SimFileSystem> = Arc::new(LocalFs::ext4_on_hdd());
    let containers = Arc::new(ContainerSet::new(vec![
        ("ssd".into(), ssd.clone()),
        ("hdd".into(), hdd),
    ]));
    let config = AdaConfig {
        taxonomy,
        // Active tags (protein + lipid + ions) on the SSD, default to HDD.
        policy: DispatchPolicy::new(
            vec![
                (Tag::new("p"), "ssd".into()),
                (Tag::new("l"), "ssd".into()),
                (Tag::new("i"), "ssd".into()),
            ],
            "hdd",
        ),
        ..AdaConfig::paper_prototype("ssd", "hdd")
    };
    let ada = Ada::new(config, containers, ssd);

    let w = ada_workload::gpcr_workload(10_000, 6, 5);
    ada.ingest(
        "membrane",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();

    println!("\nper-tag placement:");
    let label = ada.label("membrane").unwrap();
    for tag in label.all_tags() {
        println!("  '{}': {} atoms", tag, label.atoms_of(&tag));
    }
    for (backend, bytes) in ada.containers().bytes_by_backend("membrane").unwrap() {
        println!("  backend '{}': {} kB", backend, bytes / 1000);
    }

    // Fetch only the bilayer.
    let q = ada.query("membrane", Some(&Tag::new("l"))).unwrap();
    if let RetrievedData::Real(traj) = q.data {
        println!(
            "\nfetched lipid subset: {} frames x {} atoms ({} kB)",
            traj.len(),
            traj.natoms(),
            traj.nbytes() / 1000
        );
    }
}
