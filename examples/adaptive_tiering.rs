//! The tiering extension in action: a solvation study hammers the MISC
//! (water) subset, the rebalancer notices and swaps the placement, and
//! subsequent queries get SSD-speed water.
//!
//! ```text
//! cargo run --release --example adaptive_tiering
//! ```

use ada_core::{IngestInput, Rebalancer};
use ada_mdformats::write_pdb;
use ada_mdformats::xtc::{write_xtc, DEFAULT_PRECISION};
use ada_mdmodel::Tag;
use ada_repro::ada_over_hybrid_storage;

fn main() {
    let w = ada_workload::gpcr_workload(8000, 8, 999);
    let ada = ada_over_hybrid_storage();
    ada.ingest(
        "solvation",
        IngestInput::Real {
            pdb_text: write_pdb(&w.system),
            xtc_bytes: write_xtc(&w.trajectory, DEFAULT_PRECISION).unwrap(),
        },
    )
    .unwrap();

    let placement = |label: &str| {
        println!("{}:", label);
        for r in ada.containers().index("solvation").unwrap() {
            println!("  tag '{}' on {}", r.tag, r.backend);
        }
    };
    placement("initial placement (paper policy: protein->ssd, MISC->hdd)");

    // The study queries water over and over.
    let before = ada.query("solvation", Some(&Tag::misc())).unwrap().read;
    for _ in 0..6 {
        ada.query("solvation", Some(&Tag::misc())).unwrap();
    }
    println!(
        "\naccess counts: {:?}",
        ada.access_counts("solvation")
            .iter()
            .map(|(t, c)| format!("{}={}", t, c))
            .collect::<Vec<_>>()
    );

    // Rebalance: hot tags to SSD, cold tags to HDD.
    let rb = Rebalancer::new("ssd", "hdd", 4);
    let plan = rb.plan(&ada, "solvation").unwrap();
    println!("migration plan: {:?}", plan.moves);
    let t = rb.rebalance(&ada, "solvation").unwrap();
    println!(
        "migration took {:.2} s (virtual, background)",
        t.as_secs_f64()
    );
    placement("\nafter rebalance");

    let after = ada.query("solvation", Some(&Tag::misc())).unwrap().read;
    println!(
        "\nMISC query read time: {:.3} s (HDD) -> {:.3} s (SSD), {:.0}x faster",
        before.as_secs_f64(),
        after.as_secs_f64(),
        before.as_secs_f64() / after.as_secs_f64()
    );
}
